//! §4.6 region stacks: the paper's proposed refinement.
//!
//! Hardware accounting cannot tell lock waiting from barrier waiting, so
//! the whole-program stack reports barrier imbalance as synchronization
//! (spinning/yielding). Computing one stack per barrier-delimited region
//! reclassifies the pre-barrier waits as *imbalance*, quantifying barrier
//! overhead directly. This experiment shows both views side by side for
//! a rotating-imbalance workload (the lud model).

use std::fmt;

use cmpsim::{region_stacks, MachineConfig, Simulation};
use speedup_stacks::render::RenderOptions;
use speedup_stacks::report::{Block, Column, Report, Scalar, Table, Unit, Value};
use speedup_stacks::{AccountingConfig, Component, SimError, SpeedupStack};
use workloads::{streams_for, Suite};

use crate::runner::scaled_profile;
use crate::study::{Study, StudyParams};

/// Whole-program vs per-region decomposition.
#[derive(Debug)]
pub struct RegionsDemo {
    /// Benchmark display name.
    pub name: String,
    /// The conventional whole-program stack.
    pub whole: SpeedupStack,
    /// One stack per barrier-delimited region.
    pub regions: Vec<SpeedupStack>,
    /// Thread count of the run (16 in the paper's demonstration).
    pub threads: usize,
}

impl RegionsDemo {
    /// Total synchronization (spin + yield) in the whole-program stack.
    #[must_use]
    pub fn whole_sync(&self) -> f64 {
        self.whole.component(Component::Spinning) + self.whole.component(Component::Yielding)
    }

    /// Average imbalance component across region stacks.
    #[must_use]
    pub fn mean_region_imbalance(&self) -> f64 {
        if self.regions.is_empty() {
            return 0.0;
        }
        self.regions
            .iter()
            .map(|s| s.component(Component::Imbalance))
            .sum::<f64>()
            / self.regions.len() as f64
    }
}

/// Runs the region-stack demonstration (lud at 16 threads).
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run(scale: f64) -> RegionsDemo {
    run_study(&StudyParams::with_scale(scale))
}

/// [`run`] honoring the thread-count and LLC overrides.
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run_study(params: &StudyParams) -> RegionsDemo {
    let threads = params.single_count(16);
    let p = workloads::find("lud", Suite::Rodinia).expect("catalog entry");
    let p = scaled_profile(&p, params.scale);
    let mut cfg = MachineConfig::with_cores(threads);
    cfg.mem = params.mem();
    cfg.record_regions = true;
    let result = Simulation::new(cfg, streams_for(&p, threads))
        .run()
        .expect("run");
    let whole = result
        .stack(&AccountingConfig::default())
        .expect("valid counters");
    let regions = region_stacks(&result, &AccountingConfig::default()).expect("valid regions");
    RegionsDemo {
        name: workloads::display_name(&p),
        whole,
        regions,
        threads,
    }
}

impl RegionsDemo {
    /// Converts the demonstration into its structured [`Report`].
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = format!(
            "§4.6 region stacks ({}, {} threads)",
            self.name, self.threads
        );
        let mut report = Report::new("regions", &title);
        report.push(Block::line(&title));
        report.push(Block::Blank);
        report.push(Block::line(format!(
            "whole-program stack: spinning={:.2} yielding={:.2} imbalance={:.2}",
            self.whole.component(Component::Spinning),
            self.whole.component(Component::Yielding),
            self.whole.component(Component::Imbalance),
        )));
        report.push(Block::hidden(Block::Stack {
            label: "whole_program".to_string(),
            stack: self.whole.clone(),
            options: RenderOptions::default(),
        }));
        report.push(Block::line(format!(
            "per-region stacks ({} regions):",
            self.regions.len()
        )));
        let mut table = Table::new(
            "region_stacks",
            vec![
                Column::new("region")
                    .text_header("{:<8}")
                    .left(8)
                    .unit(Unit::Count),
                Column::new("spin")
                    .text_header(" {:>8}")
                    .prefix(" ")
                    .width(8)
                    .precision(2)
                    .unit(Unit::Speedup),
                Column::new("yielding")
                    .text_header(" {:>9}")
                    .prefix(" ")
                    .width(9)
                    .precision(2)
                    .unit(Unit::Speedup),
                Column::new("imbalance")
                    .text_header(" {:>9}")
                    .prefix(" ")
                    .width(9)
                    .precision(2)
                    .unit(Unit::Speedup),
                Column::new("estimated_speedup")
                    .header(format!(" {:>10}", "est.speedup"))
                    .prefix(" ")
                    .width(10)
                    .precision(2)
                    .unit(Unit::Speedup),
                Column::new("tp_cycles")
                    .header(format!(" {:>8}", "Tp"))
                    .prefix(" ")
                    .width(8)
                    .unit(Unit::Cycles),
            ],
        );
        for (i, s) in self.regions.iter().enumerate() {
            table.row(vec![
                Value::U64(i as u64),
                s.component(Component::Spinning).into(),
                s.component(Component::Yielding).into(),
                s.component(Component::Imbalance).into(),
                s.estimated_speedup().into(),
                s.tp_cycles().into(),
            ]);
        }
        report.push(Block::Table(table));
        report.push(Block::Blank);
        report.push(Block::Scalar(Scalar::new(
            "whole_program_sync",
            self.whole_sync(),
            Unit::Speedup,
            format!(
                "whole-program sync (spin+yield) = {:.2}  →  mean per-region imbalance = {:.2}",
                self.whole_sync(),
                self.mean_region_imbalance()
            ),
        )));
        report.push(Block::hidden(Block::Scalar(Scalar::new(
            "mean_region_imbalance",
            self.mean_region_imbalance(),
            Unit::Speedup,
            String::new(),
        ))));
        report.push(Block::line(
            "(the barrier waiting that hardware must book as synchronization is\n revealed as per-phase load imbalance once stacks are computed per region)",
        ));
        report
    }
}

impl fmt::Display for RegionsDemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// The §4.6 region-stack demonstration as a registry [`Study`] (honors
/// `scale`, `threads` — the last entry — and `llc_mib`).
#[derive(Debug, Clone, Copy)]
pub struct RegionsStudy;

impl Study for RegionsStudy {
    fn name(&self) -> &'static str {
        "regions"
    }

    fn description(&self) -> &'static str {
        "Whole-program vs per-region stacks: barrier waits become imbalance (lud)"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let mut report = run_study(params).to_report();
        params.record(&mut report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_view_reclassifies_barrier_waits() {
        let demo = run(0.25);
        assert!(!demo.regions.is_empty());
        // Whole-program: barrier waits are sync; per-region: imbalance.
        assert!(
            demo.whole_sync() > 2.0,
            "whole-program sync {:.2}",
            demo.whole_sync()
        );
        assert!(
            demo.mean_region_imbalance() > 2.0,
            "mean region imbalance {:.2}",
            demo.mean_region_imbalance()
        );
        // Inside regions there is almost no synchronization left.
        let mean_region_sync: f64 = demo
            .regions
            .iter()
            .map(|s| s.component(Component::Spinning) + s.component(Component::Yielding))
            .sum::<f64>()
            / demo.regions.len() as f64;
        assert!(
            mean_region_sync < demo.mean_region_imbalance() / 2.0,
            "regions still sync-heavy: {mean_region_sync:.2}"
        );
    }

    #[test]
    fn region_stacks_are_valid() {
        let demo = run(0.25);
        for s in &demo.regions {
            assert!(s.is_valid());
            assert_eq!(s.num_threads(), 16);
        }
    }
}
