//! §4.6 region stacks: the paper's proposed refinement.
//!
//! Hardware accounting cannot tell lock waiting from barrier waiting, so
//! the whole-program stack reports barrier imbalance as synchronization
//! (spinning/yielding). Computing one stack per barrier-delimited region
//! reclassifies the pre-barrier waits as *imbalance*, quantifying barrier
//! overhead directly. This experiment shows both views side by side for
//! a rotating-imbalance workload (the lud model).

use std::fmt;

use cmpsim::{region_stacks, MachineConfig, Simulation};
use speedup_stacks::{AccountingConfig, Component, SpeedupStack};
use workloads::{streams_for, Suite};

use crate::runner::scaled_profile;

/// Whole-program vs per-region decomposition.
#[derive(Debug)]
pub struct RegionsDemo {
    /// Benchmark display name.
    pub name: String,
    /// The conventional whole-program stack.
    pub whole: SpeedupStack,
    /// One stack per barrier-delimited region.
    pub regions: Vec<SpeedupStack>,
}

impl RegionsDemo {
    /// Total synchronization (spin + yield) in the whole-program stack.
    #[must_use]
    pub fn whole_sync(&self) -> f64 {
        self.whole.component(Component::Spinning) + self.whole.component(Component::Yielding)
    }

    /// Average imbalance component across region stacks.
    #[must_use]
    pub fn mean_region_imbalance(&self) -> f64 {
        if self.regions.is_empty() {
            return 0.0;
        }
        self.regions
            .iter()
            .map(|s| s.component(Component::Imbalance))
            .sum::<f64>()
            / self.regions.len() as f64
    }
}

/// Runs the region-stack demonstration (lud at 16 threads).
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run(scale: f64) -> RegionsDemo {
    let p = workloads::find("lud", Suite::Rodinia).expect("catalog entry");
    let p = scaled_profile(&p, scale);
    let mut cfg = MachineConfig::with_cores(16);
    cfg.record_regions = true;
    let result = Simulation::new(cfg, streams_for(&p, 16))
        .run()
        .expect("run");
    let whole = result
        .stack(&AccountingConfig::default())
        .expect("valid counters");
    let regions = region_stacks(&result, &AccountingConfig::default()).expect("valid regions");
    RegionsDemo {
        name: workloads::display_name(&p),
        whole,
        regions,
    }
}

impl fmt::Display for RegionsDemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§4.6 region stacks ({}, 16 threads)", self.name)?;
        writeln!(f)?;
        writeln!(
            f,
            "whole-program stack: spinning={:.2} yielding={:.2} imbalance={:.2}",
            self.whole.component(Component::Spinning),
            self.whole.component(Component::Yielding),
            self.whole.component(Component::Imbalance),
        )?;
        writeln!(f, "per-region stacks ({} regions):", self.regions.len())?;
        writeln!(
            f,
            "{:<8} {:>8} {:>9} {:>9} {:>10} {:>8}",
            "region", "spin", "yielding", "imbalance", "est.speedup", "Tp"
        )?;
        for (i, s) in self.regions.iter().enumerate() {
            writeln!(
                f,
                "{:<8} {:>8.2} {:>9.2} {:>9.2} {:>10.2} {:>8}",
                i,
                s.component(Component::Spinning),
                s.component(Component::Yielding),
                s.component(Component::Imbalance),
                s.estimated_speedup(),
                s.tp_cycles(),
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "whole-program sync (spin+yield) = {:.2}  →  mean per-region imbalance = {:.2}",
            self.whole_sync(),
            self.mean_region_imbalance()
        )?;
        writeln!(
            f,
            "(the barrier waiting that hardware must book as synchronization is\n revealed as per-phase load imbalance once stacks are computed per region)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_view_reclassifies_barrier_waits() {
        let demo = run(0.25);
        assert!(!demo.regions.is_empty());
        // Whole-program: barrier waits are sync; per-region: imbalance.
        assert!(
            demo.whole_sync() > 2.0,
            "whole-program sync {:.2}",
            demo.whole_sync()
        );
        assert!(
            demo.mean_region_imbalance() > 2.0,
            "mean region imbalance {:.2}",
            demo.mean_region_imbalance()
        );
        // Inside regions there is almost no synchronization left.
        let mean_region_sync: f64 = demo
            .regions
            .iter()
            .map(|s| s.component(Component::Spinning) + s.component(Component::Yielding))
            .sum::<f64>()
            / demo.regions.len() as f64;
        assert!(
            mean_region_sync < demo.mean_region_imbalance() / 2.0,
            "regions still sync-heavy: {mean_region_sync:.2}"
        );
    }

    #[test]
    fn region_stacks_are_valid() {
        let demo = run(0.25);
        for s in &demo.regions {
            assert!(s.is_valid());
            assert_eq!(s.num_threads(), 16);
        }
    }
}
