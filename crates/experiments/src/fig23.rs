//! Figures 2 and 3: the illustrative speedup stack and the per-thread
//! execution-time breakup.
//!
//! These are didactic figures in the paper; here they render real data —
//! an annotated stack for one benchmark (Figure 2) and the per-thread
//! cycle-component breakup that underlies it (Figure 3).

use std::fmt;

use speedup_stacks::render::{render_stack, RenderOptions};
use speedup_stacks::{Component, SpeedupStack};
use workloads::Suite;

use crate::runner::{run_profile, scaled_profile, RunOptions};

/// Figure 2 data: one annotated stack.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Benchmark display name.
    pub name: String,
    /// The stack (actual speedup attached).
    pub stack: SpeedupStack,
}

/// Regenerates Figure 2 (facesim at 16 threads, which exercises most
/// components).
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run_fig2(scale: f64) -> Fig2 {
    let p = workloads::find("facesim", Suite::ParsecMedium).expect("catalog entry");
    let p = scaled_profile(&p, scale);
    let out = run_profile(&p, &RunOptions::symmetric(16), None).expect("run");
    Fig2 {
        name: out.name.clone(),
        stack: out.stack,
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 2: illustrative speedup stack ({})", self.name)?;
        writeln!(f)?;
        write!(
            f,
            "{}",
            render_stack(&self.name, &self.stack, &RenderOptions::default())
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "net negative LLC interference = negative − positive = {:.3}",
            self.stack.net_negative_llc()
        )?;
        writeln!(
            f,
            "max theoretical speedup = N = {}; actual speedup = {:.2}",
            self.stack.num_threads(),
            self.stack.actual_speedup().unwrap_or(f64::NAN)
        )
    }
}

/// Figure 3 data: the per-thread breakup of multi-threaded execution time.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Benchmark display name.
    pub name: String,
    /// `Tp` in cycles.
    pub tp_cycles: u64,
    /// The stack whose per-thread breakdowns are shown.
    pub stack: SpeedupStack,
}

/// Regenerates Figure 3 (cholesky at 4 threads: spin, yield, memory and
/// imbalance all visible).
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run_fig3(scale: f64) -> Fig3 {
    let p = workloads::find("cholesky", Suite::Splash2).expect("catalog entry");
    let p = scaled_profile(&p, scale);
    let out = run_profile(&p, &RunOptions::symmetric(4), None).expect("run");
    Fig3 {
        name: out.name.clone(),
        tp_cycles: out.mt_cycles,
        stack: out.stack,
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3: per-thread execution time breakup ({}, Tp = {} cycles)",
            self.name, self.tp_cycles
        )?;
        write!(f, "{:<8} {:>12}", "thread", "T̂_i (est.)")?;
        for c in Component::ALL {
            write!(f, " {:>9}", c.label())?;
        }
        writeln!(f, " {:>9}", "positive")?;
        for (i, t) in self.stack.per_thread().iter().enumerate() {
            write!(f, "{i:<8} {:>12.0}", t.estimated_single_thread_cycles)?;
            for c in Component::ALL {
                write!(f, " {:>9.0}", t.overheads[c])?;
            }
            writeln!(f, " {:>9.0}", t.positive_cycles)?;
        }
        writeln!(
            f,
            "sum of T̂_i = estimated single-threaded time = {:.0} cycles",
            self.stack.estimated_single_thread_cycles()
        )
    }
}
