//! Figures 2 and 3: the illustrative speedup stack and the per-thread
//! execution-time breakup.
//!
//! These are didactic figures in the paper; here they render real data —
//! an annotated stack for one benchmark (Figure 2) and the per-thread
//! cycle-component breakup that underlies it (Figure 3).

use std::fmt;

use speedup_stacks::render::RenderOptions;
use speedup_stacks::report::{Block, Column, Report, Scalar, Table, Unit, Value};
use speedup_stacks::{Component, SimError, SpeedupStack};
use workloads::Suite;

use crate::runner::{run_profile, scaled_profile, RunOptions};
use crate::study::{Study, StudyParams};

/// Figure 2 data: one annotated stack.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Benchmark display name.
    pub name: String,
    /// The stack (actual speedup attached).
    pub stack: SpeedupStack,
}

/// Regenerates Figure 2 (facesim at 16 threads, which exercises most
/// components).
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run_fig2(scale: f64) -> Fig2 {
    run_fig2_params(&StudyParams::with_scale(scale))
}

/// [`run_fig2`] honoring the thread-count and LLC overrides.
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run_fig2_params(params: &StudyParams) -> Fig2 {
    let n = params.single_count(16);
    let p = workloads::find("facesim", Suite::ParsecMedium).expect("catalog entry");
    let p = scaled_profile(&p, params.scale);
    let opts = RunOptions {
        mem: params.mem(),
        ..RunOptions::symmetric(n)
    };
    let out = run_profile(&p, &opts, None).expect("run");
    Fig2 {
        name: out.name.clone(),
        stack: out.stack,
    }
}

impl Fig2 {
    /// Converts the figure into its structured [`Report`].
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = format!("Figure 2: illustrative speedup stack ({})", self.name);
        let mut report = Report::new("fig2", &title);
        report.push(Block::line(&title));
        report.push(Block::Blank);
        report.push(Block::Stack {
            label: self.name.clone(),
            stack: self.stack.clone(),
            options: RenderOptions::default(),
        });
        report.push(Block::Blank);
        report.push(Block::Scalar(Scalar::new(
            "net_negative_llc",
            self.stack.net_negative_llc(),
            Unit::Speedup,
            format!(
                "net negative LLC interference = negative − positive = {:.3}",
                self.stack.net_negative_llc()
            ),
        )));
        report.push(Block::line(format!(
            "max theoretical speedup = N = {}; actual speedup = {:.2}",
            self.stack.num_threads(),
            self.stack.actual_speedup().unwrap_or(f64::NAN)
        )));
        report
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// Figure 2 as a registry [`Study`] (honors `scale`, `threads` — the
/// last entry — and `llc_mib`).
#[derive(Debug, Clone, Copy)]
pub struct Fig2Study;

impl Study for Fig2Study {
    fn name(&self) -> &'static str {
        "fig2"
    }

    fn description(&self) -> &'static str {
        "Illustrative annotated speedup stack (facesim, 16 threads)"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let mut report = run_fig2_params(params).to_report();
        params.record(&mut report);
        Ok(report)
    }
}

/// Figure 3 data: the per-thread breakup of multi-threaded execution time.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Benchmark display name.
    pub name: String,
    /// `Tp` in cycles.
    pub tp_cycles: u64,
    /// The stack whose per-thread breakdowns are shown.
    pub stack: SpeedupStack,
}

/// Regenerates Figure 3 (cholesky at 4 threads: spin, yield, memory and
/// imbalance all visible).
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run_fig3(scale: f64) -> Fig3 {
    run_fig3_params(&StudyParams::with_scale(scale))
}

/// [`run_fig3`] honoring the thread-count and LLC overrides.
///
/// # Panics
///
/// Panics if the simulation fails.
#[must_use]
pub fn run_fig3_params(params: &StudyParams) -> Fig3 {
    let n = params.single_count(4);
    let p = workloads::find("cholesky", Suite::Splash2).expect("catalog entry");
    let p = scaled_profile(&p, params.scale);
    let opts = RunOptions {
        mem: params.mem(),
        ..RunOptions::symmetric(n)
    };
    let out = run_profile(&p, &opts, None).expect("run");
    Fig3 {
        name: out.name.clone(),
        tp_cycles: out.mt_cycles,
        stack: out.stack,
    }
}

impl Fig3 {
    /// Converts the figure into its structured [`Report`].
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = format!(
            "Figure 3: per-thread execution time breakup ({}, Tp = {} cycles)",
            self.name, self.tp_cycles
        );
        let mut report = Report::new("fig3", &title);
        report.push(Block::line(&title));
        report.push(Block::hidden(Block::Scalar(Scalar::new(
            "tp_cycles",
            self.tp_cycles,
            Unit::Cycles,
            String::new(),
        ))));
        let mut columns = vec![
            Column::new("thread")
                .text_header("{:<8}")
                .left(8)
                .unit(Unit::Count),
            Column::new("estimated_st_cycles")
                .header(format!(" {:>12}", "T̂_i (est.)"))
                .prefix(" ")
                .width(12)
                .precision(0)
                .unit(Unit::Cycles),
        ];
        for c in Component::ALL {
            columns.push(
                Column::new(c.label())
                    .header(format!(" {:>9}", c.label()))
                    .prefix(" ")
                    .width(9)
                    .precision(0)
                    .unit(Unit::Cycles),
            );
        }
        columns.push(
            Column::new("positive")
                .header(format!(" {:>9}", "positive"))
                .prefix(" ")
                .width(9)
                .precision(0)
                .unit(Unit::Cycles),
        );
        let mut table = Table::new("per_thread", columns);
        for (i, t) in self.stack.per_thread().iter().enumerate() {
            let mut row = vec![
                Value::U64(i as u64),
                Value::F64(t.estimated_single_thread_cycles),
            ];
            for c in Component::ALL {
                row.push(Value::F64(t.overheads[c]));
            }
            row.push(Value::F64(t.positive_cycles));
            table.row(row);
        }
        report.push(Block::Table(table));
        report.push(Block::Scalar(Scalar::new(
            "estimated_single_thread_cycles",
            self.stack.estimated_single_thread_cycles(),
            Unit::Cycles,
            format!(
                "sum of T̂_i = estimated single-threaded time = {:.0} cycles",
                self.stack.estimated_single_thread_cycles()
            ),
        )));
        report
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// Figure 3 as a registry [`Study`] (honors `scale`, `threads` — the
/// last entry — and `llc_mib`).
#[derive(Debug, Clone, Copy)]
pub struct Fig3Study;

impl Study for Fig3Study {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn description(&self) -> &'static str {
        "Per-thread execution-time breakup underlying a stack (cholesky, 4 threads)"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let mut report = run_fig3_params(params).to_report();
        params.record(&mut report);
        Ok(report)
    }
}
