//! Input-source selection shared by the checker binaries: a positional
//! argument of `-` (or no argument at all, where the tool allows it)
//! means *read stdin*.
//!
//! Text consumers ([`InputSource::read_to_string`]) get the bytes
//! directly. Path-only consumers — `tracecheck`'s
//! [`workloads::trace::verify`] walks the file with seeks — get
//! [`InputSource::materialize`]: stdin is spilled to a temporary file
//! that is removed when the handle drops, while a real path is passed
//! through untouched.

use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Where a checker binary reads its input from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSource {
    /// Standard input (`-`, or an omitted argument).
    Stdin,
    /// A file path.
    Path(String),
}

impl InputSource {
    /// Interprets a positional argument: `None` or `"-"` is stdin,
    /// anything else a path.
    #[must_use]
    pub fn from_arg(arg: Option<String>) -> InputSource {
        match arg {
            None => InputSource::Stdin,
            Some(a) if a == "-" => InputSource::Stdin,
            Some(path) => InputSource::Path(path),
        }
    }

    /// Human-readable source name for diagnostics.
    #[must_use]
    pub fn label(&self) -> &str {
        match self {
            InputSource::Stdin => "<stdin>",
            InputSource::Path(p) => p,
        }
    }

    /// Reads the whole source as UTF-8 text.
    ///
    /// # Errors
    ///
    /// The underlying read error; non-UTF-8 input surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_to_string(&self) -> io::Result<String> {
        let mut out = String::new();
        match self {
            InputSource::Stdin => {
                io::stdin().read_to_string(&mut out)?;
            }
            InputSource::Path(p) => {
                out = std::fs::read_to_string(p)?;
            }
        }
        Ok(out)
    }

    /// Ensures the source exists as a file on disk: a path is passed
    /// through, stdin is spilled (as raw bytes — trace files are binary)
    /// to a temporary file removed when the returned handle drops.
    ///
    /// # Errors
    ///
    /// The underlying read/write error.
    pub fn materialize(&self, tag: &str) -> io::Result<MaterializedInput> {
        match self {
            InputSource::Path(p) => Ok(MaterializedInput {
                path: PathBuf::from(p),
                temporary: false,
            }),
            InputSource::Stdin => {
                static N: AtomicUsize = AtomicUsize::new(0);
                let path = std::env::temp_dir().join(format!(
                    "{tag}-stdin-{}-{}",
                    std::process::id(),
                    N.fetch_add(1, Ordering::Relaxed)
                ));
                let mut file = std::fs::File::create(&path)?;
                let spill = io::copy(&mut io::stdin().lock(), &mut file).and_then(|_| file.flush());
                if let Err(e) = spill {
                    drop(file);
                    std::fs::remove_file(&path).ok();
                    return Err(e);
                }
                Ok(MaterializedInput {
                    path,
                    temporary: true,
                })
            }
        }
    }
}

/// A source guaranteed to exist as a file; removes its backing file on
/// drop when it was a stdin spill.
#[derive(Debug)]
pub struct MaterializedInput {
    path: PathBuf,
    temporary: bool,
}

impl MaterializedInput {
    /// The on-disk path to hand to path-only consumers.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for MaterializedInput {
    fn drop(&mut self) {
        if self.temporary {
            std::fs::remove_file(&self.path).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_interpretation() {
        assert_eq!(InputSource::from_arg(None), InputSource::Stdin);
        assert_eq!(
            InputSource::from_arg(Some("-".to_string())),
            InputSource::Stdin
        );
        assert_eq!(
            InputSource::from_arg(Some("a.json".to_string())),
            InputSource::Path("a.json".to_string())
        );
        assert_eq!(InputSource::Stdin.label(), "<stdin>");
        assert_eq!(InputSource::Path("x".to_string()).label(), "x");
    }

    #[test]
    fn path_reads_and_materializes_without_copy() {
        let path = std::env::temp_dir().join(format!("input-test-{}.txt", std::process::id()));
        std::fs::write(&path, "hello").unwrap();
        let src = InputSource::Path(path.display().to_string());
        assert_eq!(src.read_to_string().unwrap(), "hello");
        let m = src.materialize("test").unwrap();
        assert_eq!(m.path(), path);
        drop(m);
        // A real path is never treated as temporary.
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_path_errors() {
        let src = InputSource::Path("/nonexistent/never/x".to_string());
        assert!(src.read_to_string().is_err());
    }
}
