//! §4.7: the hardware cost table of the accounting architecture.

use std::fmt;

use speedup_stacks::report::{Block, Report, Scalar, Unit};
use speedup_stacks::{HardwareCostModel, SimError};

use crate::study::{Study, StudyParams};

/// The §4.7 cost breakdown.
#[derive(Debug, Clone)]
pub struct HwCost {
    /// The model used (paper defaults).
    pub model: HardwareCostModel,
    /// Cores of the CMP sized in the paper's summary (16).
    pub cores: u32,
}

/// Builds the paper's hardware cost table.
#[must_use]
pub fn run() -> HwCost {
    run_params(&StudyParams::default())
}

/// [`run`] honoring the thread-count override (the CMP size the total is
/// computed for; workload scale is meaningless here and ignored).
#[must_use]
pub fn run_params(params: &StudyParams) -> HwCost {
    HwCost {
        model: HardwareCostModel::paper_default(),
        cores: u32::try_from(params.single_count(16)).unwrap_or(16),
    }
}

impl HwCost {
    /// Converts the cost table into its structured [`Report`]: one
    /// scalar metric in bytes per storage structure.
    #[must_use]
    pub fn to_report(&self) -> Report {
        let m = &self.model;
        let title = "Hardware cost of the cycle accounting architecture (§4.7)";
        let mut report = Report::new("hwcost", title);
        report.push(Block::line(title));
        let scalars: [(&str, u64, String); 7] = [
            (
                "atd_bytes",
                m.atd_bytes(),
                format!(
                    "  ATD ({} sets × {} ways × {} bits)      {:>6} B",
                    m.atd_sampled_sets,
                    m.atd_ways,
                    m.atd_entry_bits,
                    m.atd_bytes()
                ),
            ),
            (
                "ora_bytes",
                m.ora_bytes(),
                format!(
                    "  ORA ({} banks × {} bits)                {:>6} B",
                    m.ora_banks,
                    m.ora_entry_bits,
                    m.ora_bytes()
                ),
            ),
            (
                "counter_bytes",
                m.counter_bytes(),
                format!(
                    "  raw event counters ({} × 64 bits)        {:>6} B",
                    m.interference_counters,
                    m.counter_bytes()
                ),
            ),
            (
                "interference_bytes",
                m.interference_bytes(),
                format!(
                    "  interference accounting total            {:>6} B   (paper: 952 B)",
                    m.interference_bytes()
                ),
            ),
            (
                "spin_table_bytes",
                m.spin_table_bytes(),
                format!(
                    "  spin load table ({} × {} bits)          {:>6} B   (paper: 217 B)",
                    m.spin_table_entries,
                    m.spin_entry_bits,
                    m.spin_table_bytes()
                ),
            ),
            (
                "total_bytes_per_core",
                m.total_bytes_per_core(),
                format!(
                    "  total per core                           {:>6} B   (paper: ~1.1 KB)",
                    m.total_bytes_per_core()
                ),
            ),
            (
                "total_bytes",
                m.total_bytes(self.cores),
                format!(
                    "  total for {}-core CMP                    {:>6} B   (paper: ~18 KB)",
                    self.cores,
                    m.total_bytes(self.cores)
                ),
            ),
        ];
        for (name, value, text) in scalars {
            report.push(Block::Scalar(Scalar::new(name, value, Unit::Bytes, text)));
        }
        report
    }
}

impl fmt::Display for HwCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// The hardware cost table as a registry [`Study`] (honors `threads` —
/// the CMP size — only; runs no simulation).
#[derive(Debug, Clone, Copy)]
pub struct HwCostStudy;

impl Study for HwCostStudy {
    fn name(&self) -> &'static str {
        "hwcost"
    }

    fn description(&self) -> &'static str {
        "Hardware cost of the accounting architecture (no simulation)"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let mut report = run_params(params).to_report();
        params.record(&mut report);
        Ok(report)
    }
}
