//! §4.7: the hardware cost table of the accounting architecture.

use std::fmt;

use speedup_stacks::HardwareCostModel;

/// The §4.7 cost breakdown.
#[derive(Debug, Clone)]
pub struct HwCost {
    /// The model used (paper defaults).
    pub model: HardwareCostModel,
    /// Cores of the CMP sized in the paper's summary (16).
    pub cores: u32,
}

/// Builds the paper's hardware cost table.
#[must_use]
pub fn run() -> HwCost {
    HwCost {
        model: HardwareCostModel::paper_default(),
        cores: 16,
    }
}

impl fmt::Display for HwCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.model;
        writeln!(
            f,
            "Hardware cost of the cycle accounting architecture (§4.7)"
        )?;
        writeln!(
            f,
            "  ATD ({} sets × {} ways × {} bits)      {:>6} B",
            m.atd_sampled_sets,
            m.atd_ways,
            m.atd_entry_bits,
            m.atd_bytes()
        )?;
        writeln!(
            f,
            "  ORA ({} banks × {} bits)                {:>6} B",
            m.ora_banks,
            m.ora_entry_bits,
            m.ora_bytes()
        )?;
        writeln!(
            f,
            "  raw event counters ({} × 64 bits)        {:>6} B",
            m.interference_counters,
            m.counter_bytes()
        )?;
        writeln!(
            f,
            "  interference accounting total            {:>6} B   (paper: 952 B)",
            m.interference_bytes()
        )?;
        writeln!(
            f,
            "  spin load table ({} × {} bits)          {:>6} B   (paper: 217 B)",
            m.spin_table_entries,
            m.spin_entry_bits,
            m.spin_table_bytes()
        )?;
        writeln!(
            f,
            "  total per core                           {:>6} B   (paper: ~1.1 KB)",
            m.total_bytes_per_core()
        )?;
        writeln!(
            f,
            "  total for {}-core CMP                    {:>6} B   (paper: ~18 KB)",
            self.cores,
            m.total_bytes(self.cores)
        )
    }
}
