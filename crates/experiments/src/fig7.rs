//! Figure 7: ferret speedup as a function of the number of cores, with
//! `#threads = #cores` versus a fixed 16 threads.
//!
//! The paper's insight: for yield-dominated benchmarks the speedup number
//! approximates the average number of *active* threads, so performance
//! saturates once the core count exceeds it — and oversubscribing
//! (16 threads on fewer cores) performs at least as well as
//! threads = cores.

use std::fmt;

use workloads::Suite;

use crate::par::par_map;
use crate::runner::{run_profile, scaled_profile, single_thread_reference, RunOptions};

/// Core counts of the sweep.
pub const CORE_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// Figure 7 data.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(cores, speedup)` with `threads == cores`.
    pub threads_eq_cores: Vec<(usize, f64)>,
    /// `(cores, speedup)` with 16 threads regardless of cores.
    pub sixteen_threads: Vec<(usize, f64)>,
}

impl Fig7 {
    /// Speedup with 16 threads on `cores` cores.
    #[must_use]
    pub fn sixteen_at(&self, cores: usize) -> Option<f64> {
        self.sixteen_threads
            .iter()
            .find(|(c, _)| *c == cores)
            .map(|(_, s)| *s)
    }
}

/// Regenerates Figure 7 for the paper's ferret (simsmall).
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run(scale: f64) -> Fig7 {
    let p = workloads::find("ferret", Suite::ParsecSmall).expect("catalog entry");
    let p = scaled_profile(&p, scale);
    let st = single_thread_reference(&p, &RunOptions::symmetric(1)).expect("single-thread run");

    // Both series as one parallel sweep over the eight independent points.
    let configs: Vec<(usize, usize)> = CORE_COUNTS
        .iter()
        .map(|&c| (c, c))
        .chain(CORE_COUNTS.iter().map(|&c| (c, 16)))
        .collect();
    let speedups = par_map(configs, |(cores, threads)| {
        let opts = RunOptions {
            cores,
            threads,
            ..RunOptions::symmetric(cores)
        };
        run_profile(&p, &opts, Some(st)).expect("run").actual
    });
    let (eq, sixteen) = speedups.split_at(CORE_COUNTS.len());
    Fig7 {
        threads_eq_cores: CORE_COUNTS
            .iter()
            .copied()
            .zip(eq.iter().copied())
            .collect(),
        sixteen_threads: CORE_COUNTS
            .iter()
            .copied()
            .zip(sixteen.iter().copied())
            .collect(),
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 7: ferret speedup vs number of cores")?;
        writeln!(
            f,
            "{:<10} {:>16} {:>14}",
            "cores", "#threads=#cores", "16 threads"
        )?;
        for (i, &c) in CORE_COUNTS.iter().enumerate() {
            writeln!(
                f,
                "{:<10} {:>16.2} {:>14.2}",
                c, self.threads_eq_cores[i].1, self.sixteen_threads[i].1
            )?;
        }
        Ok(())
    }
}
