//! Figure 7: ferret speedup as a function of the number of cores, with
//! `#threads = #cores` versus a fixed 16 threads.
//!
//! The paper's insight: for yield-dominated benchmarks the speedup number
//! approximates the average number of *active* threads, so performance
//! saturates once the core count exceeds it — and oversubscribing
//! (16 threads on fewer cores) performs at least as well as
//! threads = cores.

use std::fmt;

use speedup_stacks::report::{Block, Column, Report, Table, Unit, Value};
use speedup_stacks::SimError;
use workloads::Suite;

use crate::par::map_mode;
use crate::runner::{run_profile, scaled_profile, single_thread_reference, RunOptions};
use crate::study::{Study, StudyParams};

/// Core counts of the sweep.
pub const CORE_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// The oversubscribed thread count of the second series.
pub const FIXED_THREADS: usize = 16;

/// Figure 7 data.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// `(cores, speedup)` with `threads == cores`.
    pub threads_eq_cores: Vec<(usize, f64)>,
    /// `(cores, speedup)` with [`FIXED_THREADS`] threads regardless of
    /// cores.
    pub sixteen_threads: Vec<(usize, f64)>,
}

impl Fig7 {
    /// Speedup with 16 threads on `cores` cores.
    #[must_use]
    pub fn sixteen_at(&self, cores: usize) -> Option<f64> {
        self.sixteen_threads
            .iter()
            .find(|(c, _)| *c == cores)
            .map(|(_, s)| *s)
    }

    /// Converts the figure into its structured [`Report`].
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = "Figure 7: ferret speedup vs number of cores";
        let mut report = Report::new("fig7", title);
        report.push(Block::line(title));
        let mut table = Table::new(
            "speedups",
            vec![
                Column::new("cores")
                    .text_header("{:<10}")
                    .left(10)
                    .unit(Unit::Count),
                Column::new("threads_eq_cores")
                    .header(format!(" {:>16}", "#threads=#cores"))
                    .prefix(" ")
                    .width(16)
                    .precision(2)
                    .unit(Unit::Speedup),
                Column::new("sixteen_threads")
                    .header(format!(" {:>14}", "16 threads"))
                    .prefix(" ")
                    .width(14)
                    .precision(2)
                    .unit(Unit::Speedup),
            ],
        );
        for (i, (c, eq)) in self.threads_eq_cores.iter().enumerate() {
            table.row(vec![
                (*c).into(),
                (*eq).into(),
                self.sixteen_threads
                    .get(i)
                    .map_or(Value::Missing, |(_, s)| Value::F64(*s)),
            ]);
        }
        report.push(Block::Table(table));
        report
    }
}

/// Regenerates Figure 7 for the paper's ferret (simsmall).
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run(scale: f64) -> Fig7 {
    run_params(&StudyParams::with_scale(scale))
}

/// [`run`] honoring the full [`StudyParams`]: `threads` overrides the
/// swept core counts (the oversubscribed series keeps
/// [`FIXED_THREADS`] software threads).
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_params(params: &StudyParams) -> Fig7 {
    let core_counts = params.counts_or(&CORE_COUNTS);
    let p = workloads::find("ferret", Suite::ParsecSmall).expect("catalog entry");
    let p = scaled_profile(&p, params.scale);
    let base = RunOptions {
        mem: params.mem(),
        ..RunOptions::symmetric(1)
    };
    let st = single_thread_reference(&p, &base).expect("single-thread run");

    // Both series as one parallel sweep over the independent points.
    let configs: Vec<(usize, usize)> = core_counts
        .iter()
        .map(|&c| (c, c))
        .chain(core_counts.iter().map(|&c| (c, FIXED_THREADS)))
        .collect();
    let speedups = map_mode(params.parallelism, configs, |(cores, threads)| {
        let opts = RunOptions {
            cores,
            threads,
            mem: params.mem(),
            ..RunOptions::symmetric(cores)
        };
        run_profile(&p, &opts, Some(st)).expect("run").actual
    });
    let (eq, sixteen) = speedups.split_at(core_counts.len());
    Fig7 {
        threads_eq_cores: core_counts
            .iter()
            .copied()
            .zip(eq.iter().copied())
            .collect(),
        sixteen_threads: core_counts
            .iter()
            .copied()
            .zip(sixteen.iter().copied())
            .collect(),
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// Figure 7 as a registry [`Study`] (honors `scale`, `threads` — the
/// swept core counts — `parallelism` and `llc_mib`).
#[derive(Debug, Clone, Copy)]
pub struct Fig7Study;

impl Study for Fig7Study {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn description(&self) -> &'static str {
        "Ferret speedup vs cores: threads=cores versus a fixed 16 threads"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let mut report = run_params(params).to_report();
        params.record(&mut report);
        Ok(report)
    }
}
