//! Crash-safe sweep journaling: line-delimited, checksummed JSON records
//! with a format-version header, written as grid points complete and
//! replayed on `repro --resume`.
//!
//! # Format
//!
//! Every line has the fixed layout
//!
//! ```text
//! {"crc":"xxxxxxxx","data":<record>}\n
//! ```
//!
//! where `xxxxxxxx` is the lowercase-hex CRC-32 (IEEE polynomial,
//! reflected) of the exact `<record>` byte string and `<record>` is one
//! JSON object (emitted by [`speedup_stacks::report::json`] — the
//! journal introduces no new serialization machinery). The first line's
//! record is the **header**:
//!
//! ```text
//! {"journal":"repro-sweep","version":1,"study":"fig6","fingerprint":"xxxxxxxx"}
//! ```
//!
//! `fingerprint` hashes the result-affecting study parameters
//! ([`fingerprint`]), so a journal can never silently replay points from
//! a different parameterization. Subsequent records are sweep-defined
//! (the fault-tolerant runner writes `ref` and `point` records).
//!
//! # Crash and corruption semantics
//!
//! - A final line **without a trailing newline** is the expected artifact
//!   of a killed writer: it is dropped silently and its point recomputed.
//! - A **complete** line that fails the layout, checksum or JSON parse
//!   is *quarantined*: counted, reported in the report's `Degraded`
//!   block, and its point recomputed.
//! - A journal whose **header** is missing, corrupt, from another format
//!   version or another study/parameterization is rejected with a typed
//!   [`JournalError`] — identity failures are never papered over.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

use speedup_stacks::error::JournalError;
use speedup_stacks::report::json::{self, JsonValue};

use crate::study::StudyParams;

/// The journal format version this build reads and writes.
pub const FORMAT_VERSION: u64 = 1;
/// The format magic recorded in every header.
pub const MAGIC: &str = "repro-sweep";

/// CRC-32 (IEEE 802.3 polynomial, reflected — the `cksum`/zlib variant).
/// The implementation lives in [`speedup_stacks::crc`] so the journal and
/// the binary trace format share one checksum; this re-export keeps the
/// journal's original path working.
///
/// ```
/// // The canonical check vector.
/// assert_eq!(experiments::journal::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub use speedup_stacks::crc::crc32;

use speedup_stacks::crc::crc32_hex as crc_hex;

/// Wraps one record into its checksummed journal line (with trailing
/// newline).
#[must_use]
pub fn wrap_line(data: &str) -> String {
    let mut line = String::with_capacity(data.len() + 32);
    let _ = write!(
        line,
        "{{\"crc\":\"{}\",\"data\":{data}}}",
        crc_hex(data.as_bytes())
    );
    line.push('\n');
    line
}

/// The exact byte layout of a wrapped line before the data part.
const PREFIX_LEN: usize = "{\"crc\":\"xxxxxxxx\",\"data\":".len();

/// Unwraps one journal line (without its trailing newline): verifies the
/// fixed layout and the checksum, returning the exact data substring.
///
/// # Errors
///
/// A human-readable reason when the layout or checksum does not hold
/// (the caller quarantines such lines).
pub fn unwrap_line(line: &str) -> Result<&str, String> {
    if line.len() < PREFIX_LEN + 1 || !line.ends_with('}') {
        return Err("truncated or malformed line".to_string());
    }
    if !line.starts_with("{\"crc\":\"") || &line[16..PREFIX_LEN] != "\",\"data\":" {
        return Err("unrecognized line layout".to_string());
    }
    let crc = &line[8..16];
    let data = &line[PREFIX_LEN..line.len() - 1];
    let expect = crc_hex(data.as_bytes());
    if crc != expect {
        return Err(format!(
            "checksum mismatch (line says {crc}, data hashes to {expect})"
        ));
    }
    Ok(data)
}

/// One framed line of a checksummed NDJSON stream, as classified by
/// [`framed_lines`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramedLine<'a> {
    /// An intact line's exact data substring (checksum verified).
    Record(&'a str),
    /// A complete line that failed the layout or checksum; the caller
    /// quarantines it (counted, recomputed, never served).
    Corrupt,
}

/// Splits a checksummed NDJSON buffer into framed lines. A final line
/// without its trailing newline — the expected artifact of a killed
/// writer — is dropped silently, never surfaced as corruption. Shared
/// by the sweep journal reader and the study service's cache spill.
pub fn framed_lines(content: &str) -> impl Iterator<Item = FramedLine<'_>> {
    content.split_inclusive('\n').filter_map(|line| {
        // `?` drops the only chunk that can lack a newline: the
        // unterminated kill-tail at the very end of the buffer.
        let line = line.strip_suffix('\n')?;
        Some(match unwrap_line(line) {
            Ok(data) => FramedLine::Record(data),
            Err(_) => FramedLine::Corrupt,
        })
    })
}

/// Fingerprint of the result-affecting study parameters, as recorded in
/// the journal header. Parallelism, fault policy and journaling options
/// are deliberately excluded: sweep results are bit-identical across
/// execution modes, so a journal written serially resumes under
/// `--parallelism 8` (and vice versa). Floats hash by their exact bit
/// pattern.
#[must_use]
pub fn fingerprint(study: &str, params: &StudyParams) -> String {
    crc_hex(canonical(study, params).as_bytes())
}

/// The canonical parameter string [`fingerprint`] hashes. Exposed for
/// consumers that need a collision-free identity (the study service's
/// result cache keys on this string directly — the 32-bit fingerprint
/// alone could collide and silently serve another parameterization's
/// results).
#[must_use]
pub fn canonical(study: &str, params: &StudyParams) -> String {
    let threads = params.threads.as_ref().map_or("-".to_string(), |t| {
        t.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    });
    let llc = params.llc_mib.map_or("-".to_string(), |m| m.to_string());
    format!(
        "study={study};scale={:016x};threads={threads};llc={llc}",
        params.scale.to_bits()
    )
}

/// Where a sweep journals to, and whether it starts by replaying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSpec {
    /// Journal file path.
    pub path: String,
    /// Replay completed points from the file before computing the rest
    /// (`repro --resume`); `false` truncates and starts fresh
    /// (`repro --journal`).
    pub resume: bool,
}

/// An append-only journal writer. Each record is flushed as soon as it
/// is written, so a killed process loses at most the line it was in the
/// middle of (which the reader then drops as a truncation artifact).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

fn io_err(op: &'static str, e: &std::io::Error) -> JournalError {
    JournalError::Io {
        op,
        message: e.to_string(),
    }
}

impl JournalWriter {
    /// Creates (truncating) a journal and writes its header line.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on create/write failure.
    pub fn create(
        path: impl AsRef<Path>,
        study: &str,
        fingerprint: &str,
    ) -> Result<Self, JournalError> {
        let file = File::create(path).map_err(|e| io_err("create", &e))?;
        let mut w = JournalWriter { file };
        w.append(&format!(
            "{{\"journal\": \"{MAGIC}\", \"version\": {FORMAT_VERSION}, \"study\": \"{}\", \
             \"fingerprint\": \"{fingerprint}\"}}",
            json::escape(study)
        ))?;
        Ok(w)
    }

    /// Opens an existing journal for appending (after a successful
    /// [`scan`] validated its header).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on open failure.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err("open", &e))?;
        Ok(JournalWriter { file })
    }

    /// Appends one record (a JSON object string) as a checksummed line
    /// and flushes it.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write/flush failure.
    pub fn append(&mut self, data: &str) -> Result<(), JournalError> {
        self.file
            .write_all(wrap_line(data).as_bytes())
            .map_err(|e| io_err("append", &e))?;
        self.file.flush().map_err(|e| io_err("flush", &e))
    }
}

/// The result of replaying a journal: its valid records (header
/// excluded, in file order) and the count of quarantined lines.
#[derive(Debug)]
pub struct JournalScan {
    /// Parsed, checksum-verified records after the header.
    pub records: Vec<JsonValue>,
    /// Complete lines that failed the layout, checksum or parse and were
    /// skipped (their points must be recomputed).
    pub quarantined: usize,
}

/// Replays a journal: validates the header against the requesting
/// study's identity, then collects every intact record.
///
/// # Errors
///
/// [`JournalError`] when the file is unreadable or its header is
/// missing, corrupt, from an unsupported format version, or from a
/// different study or parameter fingerprint. Corrupt non-header lines
/// are *not* errors — they are quarantined (see [`JournalScan`]).
pub fn scan(
    path: impl AsRef<Path>,
    study: &str,
    expected_fingerprint: &str,
) -> Result<JournalScan, JournalError> {
    let content = std::fs::read_to_string(path).map_err(|e| io_err("read", &e))?;
    if content.is_empty() {
        return Err(JournalError::MissingHeader);
    }
    let Some((header_line, rest)) = content.split_once('\n') else {
        // The writer died inside the header write: no identity exists.
        return Err(JournalError::BadHeader {
            why: "header line truncated".to_string(),
        });
    };
    let header_data = unwrap_line(header_line).map_err(|why| JournalError::BadHeader { why })?;
    let header =
        json::parse(header_data).map_err(|e| JournalError::BadHeader { why: e.to_string() })?;
    if header.get("journal").and_then(JsonValue::as_str) != Some(MAGIC) {
        return Err(JournalError::BadHeader {
            why: format!("not a {MAGIC} journal"),
        });
    }
    let version = header
        .get("version")
        .and_then(JsonValue::as_f64)
        .map_or(0, |v| v as u64);
    if version != FORMAT_VERSION {
        return Err(JournalError::VersionMismatch {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let journal_study = header
        .get("study")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();
    if journal_study != study {
        return Err(JournalError::StudyMismatch {
            journal: journal_study,
            requested: study.to_string(),
        });
    }
    let journal_fp = header
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();
    if journal_fp != expected_fingerprint {
        return Err(JournalError::ParamsMismatch {
            journal: journal_fp,
            requested: expected_fingerprint.to_string(),
        });
    }

    let mut records = Vec::new();
    let mut quarantined = 0usize;
    for framed in framed_lines(rest) {
        match framed {
            FramedLine::Record(data) => match json::parse(data) {
                Ok(record) => records.push(record),
                Err(_) => quarantined += 1,
            },
            FramedLine::Corrupt => quarantined += 1,
        }
    }
    Ok(JournalScan {
        records,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "repro-journal-{}-{}-{tag}.ndjson",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn crc32_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wrap_unwrap_round_trip() {
        let data = "{\"kind\": \"point\", \"threads\": 16}";
        let line = wrap_line(data);
        assert!(line.ends_with('\n'));
        assert_eq!(unwrap_line(line.trim_end_matches('\n')).unwrap(), data);
    }

    #[test]
    fn unwrap_rejects_corruption() {
        let line = wrap_line("{\"a\": 1}");
        let line = line.trim_end_matches('\n');
        // Bit-flip inside the data part.
        let flipped = line.replace("\"a\": 1", "\"a\": 2");
        assert!(unwrap_line(&flipped).unwrap_err().contains("checksum"));
        // Truncation mid-line.
        assert!(unwrap_line(&line[..line.len() - 3]).is_err());
        assert!(unwrap_line("garbage").is_err());
    }

    #[test]
    fn write_scan_round_trip() {
        let path = temp_path("roundtrip");
        let mut w = JournalWriter::create(&path, "fig6", "deadbeef").unwrap();
        w.append("{\"kind\": \"ref\", \"profile\": \"x\", \"st_cycles\": 100}")
            .unwrap();
        w.append("{\"kind\": \"point\", \"profile\": \"x\", \"threads\": 4}")
            .unwrap();
        drop(w);
        let scan = scan(&path, "fig6", "deadbeef").unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.quarantined, 0);
        assert_eq!(
            scan.records[1].get("kind").and_then(JsonValue::as_str),
            Some("point")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_dropped_silently() {
        let path = temp_path("trunc");
        let mut w = JournalWriter::create(&path, "fig6", "deadbeef").unwrap();
        w.append("{\"kind\": \"ref\", \"profile\": \"x\"}").unwrap();
        drop(w);
        // Simulate a kill mid-write: append half a line, no newline.
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str("{\"crc\":\"00000000\",\"data\":{\"kind\": \"poi");
        std::fs::write(&path, &content).unwrap();
        let scan = scan(&path, "fig6", "deadbeef").unwrap();
        assert_eq!(scan.records.len(), 1, "intact record kept");
        assert_eq!(scan.quarantined, 0, "a killed tail is not corruption");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flipped_record_quarantined() {
        let path = temp_path("flip");
        let mut w = JournalWriter::create(&path, "fig6", "deadbeef").unwrap();
        w.append("{\"kind\": \"ref\", \"profile\": \"aaa\"}")
            .unwrap();
        w.append("{\"kind\": \"ref\", \"profile\": \"bbb\"}")
            .unwrap();
        drop(w);
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, content.replace("bbb", "bxb")).unwrap();
        let scan = scan(&path, "fig6", "deadbeef").unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.quarantined, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn identity_mismatches_are_fatal() {
        let path = temp_path("identity");
        drop(JournalWriter::create(&path, "fig6", "deadbeef").unwrap());
        assert!(matches!(
            scan(&path, "fig1", "deadbeef"),
            Err(JournalError::StudyMismatch { .. })
        ));
        assert!(matches!(
            scan(&path, "fig6", "00000000"),
            Err(JournalError::ParamsMismatch { .. })
        ));
        // Corrupt the header itself.
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, content.replace(MAGIC, "other-thing")).unwrap();
        assert!(matches!(
            scan(&path, "fig6", "deadbeef"),
            Err(JournalError::BadHeader { .. })
        ));
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            scan(&path, "fig6", "deadbeef"),
            Err(JournalError::MissingHeader)
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            scan(&path, "fig6", "deadbeef"),
            Err(JournalError::Io { op: "read", .. })
        ));
    }

    #[test]
    fn version_mismatch_detected() {
        let path = temp_path("version");
        let header = format!(
            "{{\"journal\": \"{MAGIC}\", \"version\": 99, \"study\": \"fig6\", \
             \"fingerprint\": \"deadbeef\"}}"
        );
        std::fs::write(&path, wrap_line(&header)).unwrap();
        assert!(matches!(
            scan(&path, "fig6", "deadbeef"),
            Err(JournalError::VersionMismatch {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_sensitive_to_results_affecting_params_only() {
        let base = StudyParams::default();
        let fp = fingerprint("fig6", &base);
        assert_eq!(fp.len(), 8);
        assert_eq!(fp, fingerprint("fig6", &base), "deterministic");
        assert_ne!(fp, fingerprint("fig1", &base));
        assert_ne!(fp, fingerprint("fig6", &StudyParams::with_scale(0.5)));
        let mut threads = base.clone();
        threads.threads = Some(vec![2, 4]);
        assert_ne!(fp, fingerprint("fig6", &threads));
        let mut par = base.clone();
        par.parallelism = crate::par::Parallelism::Workers(7);
        assert_eq!(fp, fingerprint("fig6", &par), "parallelism excluded");
    }
}
