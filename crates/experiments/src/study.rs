//! The unified study API: every experiment as data.
//!
//! A [`Study`] is a named, described, enumerable experiment whose
//! [`Study::run`] takes typed [`StudyParams`] and returns a structured
//! [`Report`] — the same value model every driver consumes: the `repro`
//! CLI (`--list`, `--format text|json|csv`), the `bench_report` perf
//! harness, tests and future runners. The twelve paper studies
//! (fig1–fig9, hwcost, regions, scaling) register themselves in
//! [`registry`].
//!
//! # Examples
//!
//! Enumerate the registry and run one cheap study:
//!
//! ```
//! use experiments::study::{find_study, registry, StudyParams};
//!
//! assert_eq!(registry().len(), 12);
//! assert!(registry().iter().any(|s| s.name() == "fig4"));
//!
//! let hwcost = find_study("hwcost").unwrap();
//! let report = hwcost.run(&StudyParams::default()).unwrap();
//! assert_eq!(report.study, "hwcost");
//! assert!(report.to_text().contains("Hardware cost"));
//! assert!(speedup_stacks::report::json::parse(&report.to_json()).is_ok());
//! ```

use memsim::MemConfig;
use speedup_stacks::report::{Report, Value};
use speedup_stacks::SimError;

use workloads::trace::TraceSpec;

use crate::journal::JournalSpec;
use crate::par::Parallelism;
use crate::runner::FaultPolicy;

/// Typed parameters shared by every study.
///
/// Studies honor the subset that is meaningful for them (documented on
/// each study struct); defaults reproduce the paper's configuration
/// exactly, so default-parameter runs match the golden figure output.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyParams {
    /// Workload size multiplier (1.0 = the catalog sizes).
    pub scale: f64,
    /// Thread/core-count override: the sweep set for sweep studies, the
    /// last entry for single-count studies. `None` = the paper's counts.
    pub threads: Option<Vec<usize>>,
    /// Sweep parallelism for grid studies (results are deterministic and
    /// identical across modes).
    pub parallelism: Parallelism,
    /// Shared-LLC capacity override in MiB (`None` = each study's
    /// default machine).
    pub llc_mib: Option<usize>,
    /// Per-point fault policy (deadline, retries) for grid studies.
    pub faults: FaultPolicy,
    /// Crash-safe journaling / resume for grid studies that support it
    /// (see [`Study::supports_journal`]).
    pub journal: Option<JournalSpec>,
    /// Compute-unit budget per invocation (references + points); the
    /// sweep checkpoints and reports
    /// [`speedup_stacks::SimError::Interrupted`] when it runs out.
    pub max_points: Option<usize>,
    /// Trace capture / replay for grid studies that support it (see
    /// [`Study::supports_trace`]). Capture records every run's op
    /// streams to the file; replay draws them back so the run
    /// reproduces the captured report bit for bit. Deliberately **not**
    /// echoed by [`StudyParams::record`]: a replayed report must stay
    /// byte-identical to the generated one.
    pub trace: Option<TraceSpec>,
}

impl Default for StudyParams {
    fn default() -> Self {
        StudyParams {
            scale: 1.0,
            threads: None,
            parallelism: Parallelism::Auto,
            llc_mib: None,
            faults: FaultPolicy::default(),
            journal: None,
            max_points: None,
            trace: None,
        }
    }
}

impl StudyParams {
    /// Default parameters at a given workload scale.
    #[must_use]
    pub fn with_scale(scale: f64) -> Self {
        StudyParams {
            scale,
            ..StudyParams::default()
        }
    }

    /// The sweep counts: the `threads` override, or `default`.
    #[must_use]
    pub fn counts_or(&self, default: &[usize]) -> Vec<usize> {
        match &self.threads {
            Some(t) if !t.is_empty() => t.clone(),
            _ => default.to_vec(),
        }
    }

    /// The single thread count for non-sweep studies: the last entry of
    /// the `threads` override, or `default`.
    #[must_use]
    pub fn single_count(&self, default: usize) -> usize {
        self.threads
            .as_ref()
            .and_then(|t| t.last().copied())
            .unwrap_or(default)
    }

    /// The memory configuration: the default hierarchy with the LLC
    /// override applied.
    #[must_use]
    pub fn mem(&self) -> MemConfig {
        match self.llc_mib {
            Some(mib) => MemConfig::default().with_llc_mib(mib),
            None => MemConfig::default(),
        }
    }

    /// The sweep options for a grid study, wiring these parameters'
    /// fault policy, journal spec and point budget together with the
    /// study's identity. `fingerprint` comes from
    /// [`crate::journal::fingerprint`] (computed by the caller so the
    /// `String` outlives the borrow).
    #[must_use]
    pub fn sweep<'a>(
        &'a self,
        study: &'a str,
        fingerprint: &'a str,
    ) -> crate::runner::SweepOptions<'a> {
        crate::runner::SweepOptions {
            mode: self.parallelism,
            faults: self.faults,
            journal: self.journal.as_ref(),
            study,
            fingerprint,
            max_points: self.max_points,
            trace: self.trace.as_ref(),
        }
    }

    /// Records the parameters into a report's `params` map.
    pub fn record(&self, report: &mut Report) {
        report.param("scale", self.scale);
        if let Some(t) = &self.threads {
            let list = t
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            report.param("threads", Value::str(list));
        }
        let mode = match self.parallelism {
            Parallelism::Auto => "auto".to_string(),
            Parallelism::Serial => "serial".to_string(),
            Parallelism::Workers(n) => n.to_string(),
        };
        report.param("parallelism", Value::str(mode));
        if let Some(mib) = self.llc_mib {
            report.param("llc_mib", mib as u64);
        }
    }
}

/// One enumerable experiment: a name, a description and a parameterized
/// run producing a structured [`Report`].
///
/// # Examples
///
/// ```
/// use experiments::study::{Study, StudyParams};
/// use experiments::hwcost::HwCostStudy;
///
/// let study = HwCostStudy;
/// assert_eq!(study.name(), "hwcost");
/// let report = study.run(&StudyParams::default()).unwrap();
/// assert_eq!(report.params[0].0, "scale");
/// ```
pub trait Study: Sync {
    /// Registry key (`fig1` … `fig9`, `hwcost`, `regions`, `scaling`).
    fn name(&self) -> &'static str;

    /// One-line description for `repro --list`.
    fn description(&self) -> &'static str;

    /// Runs the study and returns its structured report (with the
    /// parameters echoed into [`Report::params`]).
    ///
    /// Grid studies degrade gracefully: per-point faults (panics, engine
    /// errors, deadline overruns) do not fail the run — they surface in
    /// the report's `Degraded` block. An `Err` means the run as a whole
    /// could not proceed: invalid configuration, a journal problem, or
    /// an exhausted point budget
    /// ([`speedup_stacks::SimError::Interrupted`] — resume finishes it).
    ///
    /// # Errors
    ///
    /// See [`speedup_stacks::SimError`]; each variant maps to a distinct
    /// `repro` exit code.
    fn run(&self, params: &StudyParams) -> Result<Report, SimError>;

    /// Whether this study honors [`StudyParams::journal`] /
    /// [`StudyParams::max_points`] (the benchmark-grid studies). The
    /// `repro` CLI rejects `--journal`/`--resume` for studies that
    /// don't.
    fn supports_journal(&self) -> bool {
        false
    }

    /// Whether this study honors [`StudyParams::trace`] (the
    /// benchmark-grid studies run through the trace-aware sweep). The
    /// `repro` CLI rejects `--trace-out`/`--trace-in` for studies that
    /// don't.
    fn supports_trace(&self) -> bool {
        false
    }
}

impl std::fmt::Debug for dyn Study {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Study({})", self.name())
    }
}

static REGISTRY: [&dyn Study; 12] = [
    &crate::fig1::Fig1Study,
    &crate::fig23::Fig2Study,
    &crate::fig23::Fig3Study,
    &crate::fig45::Fig4Study,
    &crate::fig45::Fig5Study,
    &crate::fig6::Fig6Study,
    &crate::fig7::Fig7Study,
    &crate::fig89::Fig8Study,
    &crate::fig89::Fig9Study,
    &crate::hwcost::HwCostStudy,
    &crate::regions_demo::RegionsStudy,
    &crate::scaling::ManycoreScalingStudy,
];

/// Every registered study, in presentation order (the paper's figures,
/// then the beyond-the-paper studies).
///
/// ```
/// let names: Vec<&str> = experiments::registry().iter().map(|s| s.name()).collect();
/// assert_eq!(names[0], "fig1");
/// assert!(names.contains(&"scaling"));
/// ```
#[must_use]
pub fn registry() -> &'static [&'static dyn Study] {
    &REGISTRY
}

/// Looks a study up by registry key.
#[must_use]
pub fn find_study(name: &str) -> Option<&'static dyn Study> {
    REGISTRY.iter().copied().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_enumerates_twelve_unique_studies() {
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 12);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 12, "duplicate study names: {names:?}");
        for expected in [
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "hwcost",
            "regions", "scaling",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn trace_support_matches_journal_support() {
        // The grid studies — and only they — run through the trace-aware
        // sweep; the CLI gates `--trace-out`/`--trace-in` on this.
        for s in registry() {
            let grid = matches!(s.name(), "fig1" | "fig4" | "fig5" | "fig6");
            assert_eq!(s.supports_trace(), grid, "{}", s.name());
            assert_eq!(s.supports_journal(), grid, "{}", s.name());
        }
    }

    #[test]
    fn descriptions_are_nonempty() {
        for s in registry() {
            assert!(
                !s.description().is_empty(),
                "{} lacks description",
                s.name()
            );
        }
    }

    #[test]
    fn params_helpers() {
        let p = StudyParams {
            threads: Some(vec![2, 8]),
            llc_mib: Some(8),
            ..StudyParams::with_scale(0.5)
        };
        assert_eq!(p.counts_or(&[1, 2, 4]), vec![2, 8]);
        assert_eq!(p.single_count(16), 8);
        assert_eq!(p.mem().llc.lines() * 64, 8 * 1024 * 1024);
        let d = StudyParams::default();
        assert_eq!(d.counts_or(&[1, 2]), vec![1, 2]);
        assert_eq!(d.single_count(16), 16);
        assert_eq!(d.mem(), MemConfig::default());
    }

    #[test]
    fn params_recorded_into_report() {
        let mut r = Report::new("x", "x");
        let p = StudyParams {
            threads: Some(vec![2, 4]),
            ..StudyParams::with_scale(0.25)
        };
        p.record(&mut r);
        assert_eq!(r.params[0], ("scale".to_string(), Value::F64(0.25)));
        assert!(r
            .params
            .iter()
            .any(|(k, v)| k == "threads" && *v == Value::str("2,4")));
    }
}
