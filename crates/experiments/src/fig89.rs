//! Figures 8 and 9: understanding LLC performance.
//!
//! - **Figure 8**: negative, positive and net LLC interference components
//!   for the benchmarks with non-negligible positive interference, at 16
//!   cores and the default 2 MB LLC.
//! - **Figure 9**: the same components for cholesky as the LLC grows from
//!   2 MB to 16 MB — negative interference shrinks (fewer capacity
//!   misses) while positive interference stays roughly constant, so the
//!   net effect of sharing eventually becomes a win.

use std::fmt;

use memsim::MemConfig;
use speedup_stacks::Component;
use workloads::Suite;

use crate::par::par_map;
use crate::runner::{run_profile, scaled_profile, RunOptions};

/// One benchmark's LLC interference decomposition (a bar triple in
/// Figures 8/9).
#[derive(Debug, Clone)]
pub struct InterferenceBar {
    /// Row label (benchmark or LLC size).
    pub label: String,
    /// Negative LLC interference, in speedup units.
    pub negative: f64,
    /// Positive LLC interference, in speedup units.
    pub positive: f64,
}

impl InterferenceBar {
    /// Net interference (negative − positive); positive values hurt.
    #[must_use]
    pub fn net(&self) -> f64 {
        self.negative - self.positive
    }
}

/// Figure 8 data.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// One bar triple per benchmark.
    pub bars: Vec<InterferenceBar>,
}

/// The paper's Figure 8 benchmark set (those with non-negligible positive
/// interference). The paper shows canneal small and large; the sizes
/// available here are small and medium.
#[must_use]
pub fn fig8_benchmarks() -> Vec<workloads::WorkloadProfile> {
    [
        ("cholesky", Suite::Splash2),
        ("lu.cont", Suite::Splash2),
        ("canneal", Suite::ParsecSmall),
        ("canneal", Suite::ParsecMedium),
        ("bfs", Suite::Rodinia),
        ("lu.ncont", Suite::Splash2),
        ("needle", Suite::Rodinia),
    ]
    .iter()
    .map(|(n, s)| workloads::find(n, *s).expect("catalog entry"))
    .collect()
}

/// Regenerates Figure 8.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_fig8(scale: f64) -> Fig8 {
    let bars = par_map(fig8_benchmarks(), |p| {
        let p = scaled_profile(&p, scale);
        let out = run_profile(&p, &RunOptions::symmetric(16), None).expect("run");
        InterferenceBar {
            label: out.name.clone(),
            negative: out.stack.component(Component::NegativeLlc),
            positive: out.stack.positive_interference(),
        }
    });
    Fig8 { bars }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8: negative, positive and net LLC interference (16 cores, 2 MB LLC)"
        )?;
        writeln!(
            f,
            "{:<18} {:>9} {:>9} {:>9}",
            "benchmark", "negative", "positive", "net"
        )?;
        for b in &self.bars {
            writeln!(
                f,
                "{:<18} {:>9.3} {:>9.3} {:>9.3}",
                b.label,
                b.negative,
                b.positive,
                b.net()
            )?;
        }
        Ok(())
    }
}

/// Figure 9 data: cholesky across LLC sizes.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// One bar triple per LLC size.
    pub bars: Vec<InterferenceBar>,
}

/// The LLC sizes of the sweep, in MiB.
pub const LLC_SIZES_MIB: [usize; 4] = [2, 4, 8, 16];

/// Regenerates Figure 9.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_fig9(scale: f64) -> Fig9 {
    let p = workloads::find("cholesky", Suite::Splash2).expect("catalog entry");
    let p = scaled_profile(&p, scale);
    let bars = par_map(LLC_SIZES_MIB.to_vec(), |mib| {
        let opts = RunOptions {
            mem: MemConfig::default().with_llc_mib(mib),
            ..RunOptions::symmetric(16)
        };
        let out = run_profile(&p, &opts, None).expect("run");
        InterferenceBar {
            label: format!("{mib}MB"),
            negative: out.stack.component(Component::NegativeLlc),
            positive: out.stack.positive_interference(),
        }
    });
    Fig9 { bars }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9: cholesky LLC interference vs LLC size (16 cores)"
        )?;
        writeln!(
            f,
            "{:<8} {:>9} {:>9} {:>9}",
            "LLC", "negative", "positive", "net"
        )?;
        for b in &self.bars {
            writeln!(
                f,
                "{:<8} {:>9.3} {:>9.3} {:>9.3}",
                b.label,
                b.negative,
                b.positive,
                b.net()
            )?;
        }
        Ok(())
    }
}
