//! Figures 8 and 9: understanding LLC performance.
//!
//! - **Figure 8**: negative, positive and net LLC interference components
//!   for the benchmarks with non-negligible positive interference, at 16
//!   cores and the default 2 MB LLC.
//! - **Figure 9**: the same components for cholesky as the LLC grows from
//!   2 MB to 16 MB — negative interference shrinks (fewer capacity
//!   misses) while positive interference stays roughly constant, so the
//!   net effect of sharing eventually becomes a win.

use std::fmt;

use memsim::MemConfig;
use speedup_stacks::report::{Block, Column, Report, Table, Unit, Value};
use speedup_stacks::{Component, SimError};
use workloads::Suite;

use crate::par::map_mode;
use crate::runner::{run_profile, scaled_profile, RunOptions};
use crate::study::{Study, StudyParams};

/// One benchmark's LLC interference decomposition (a bar triple in
/// Figures 8/9).
#[derive(Debug, Clone)]
pub struct InterferenceBar {
    /// Row label (benchmark or LLC size).
    pub label: String,
    /// Negative LLC interference, in speedup units.
    pub negative: f64,
    /// Positive LLC interference, in speedup units.
    pub positive: f64,
}

impl InterferenceBar {
    /// Net interference (negative − positive); positive values hurt.
    #[must_use]
    pub fn net(&self) -> f64 {
        self.negative - self.positive
    }
}

/// Builds the shared negative/positive/net interference table of
/// Figures 8 and 9.
fn interference_table(
    name: &str,
    label: &str,
    label_width: usize,
    bars: &[InterferenceBar],
) -> Table {
    let mut table = Table::new(
        name,
        vec![
            Column::new(label)
                .text_header(&format!("{{:<{label_width}}}"))
                .left(label_width),
            Column::new("negative")
                .text_header(" {:>9}")
                .prefix(" ")
                .width(9)
                .precision(3)
                .unit(Unit::Speedup),
            Column::new("positive")
                .text_header(" {:>9}")
                .prefix(" ")
                .width(9)
                .precision(3)
                .unit(Unit::Speedup),
            Column::new("net")
                .text_header(" {:>9}")
                .prefix(" ")
                .width(9)
                .precision(3)
                .unit(Unit::Speedup),
        ],
    );
    for b in bars {
        table.row(vec![
            Value::str(&b.label),
            b.negative.into(),
            b.positive.into(),
            b.net().into(),
        ]);
    }
    table
}

/// Figure 8 data.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// One bar triple per benchmark.
    pub bars: Vec<InterferenceBar>,
    /// Core/thread count of the runs (16 in the paper).
    pub cores: usize,
    /// Shared LLC capacity of the runs, in MiB (2 in the paper).
    pub llc_mib: usize,
}

/// The paper's Figure 8 benchmark set (those with non-negligible positive
/// interference). The paper shows canneal small and large; the sizes
/// available here are small and medium.
#[must_use]
pub fn fig8_benchmarks() -> Vec<workloads::WorkloadProfile> {
    [
        ("cholesky", Suite::Splash2),
        ("lu.cont", Suite::Splash2),
        ("canneal", Suite::ParsecSmall),
        ("canneal", Suite::ParsecMedium),
        ("bfs", Suite::Rodinia),
        ("lu.ncont", Suite::Splash2),
        ("needle", Suite::Rodinia),
    ]
    .iter()
    .map(|(n, s)| workloads::find(n, *s).expect("catalog entry"))
    .collect()
}

/// Regenerates Figure 8.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_fig8(scale: f64) -> Fig8 {
    run_fig8_params(&StudyParams::with_scale(scale))
}

/// [`run_fig8`] honoring the thread-count and LLC overrides.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_fig8_params(params: &StudyParams) -> Fig8 {
    let cores = params.single_count(16);
    let mem = params.mem();
    let llc_mib = params.llc_mib.unwrap_or(2);
    let bars = map_mode(params.parallelism, fig8_benchmarks(), |p| {
        let p = scaled_profile(&p, params.scale);
        let opts = RunOptions {
            mem,
            ..RunOptions::symmetric(cores)
        };
        let out = run_profile(&p, &opts, None).expect("run");
        InterferenceBar {
            label: out.name.clone(),
            negative: out.stack.component(Component::NegativeLlc),
            positive: out.stack.positive_interference(),
        }
    });
    Fig8 {
        bars,
        cores,
        llc_mib,
    }
}

impl Fig8 {
    /// Converts the figure into its structured [`Report`].
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = format!(
            "Figure 8: negative, positive and net LLC interference ({} cores, {} MB LLC)",
            self.cores, self.llc_mib
        );
        let mut report = Report::new("fig8", &title);
        report.push(Block::line(&title));
        report.push(Block::Table(interference_table(
            "interference",
            "benchmark",
            18,
            &self.bars,
        )));
        report
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// Figure 8 as a registry [`Study`] (honors `scale`, `threads` — the
/// last entry — `parallelism` and `llc_mib`).
#[derive(Debug, Clone, Copy)]
pub struct Fig8Study;

impl Study for Fig8Study {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn description(&self) -> &'static str {
        "Negative/positive/net LLC interference per benchmark (16 cores, 2 MB LLC)"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let mut report = run_fig8_params(params).to_report();
        params.record(&mut report);
        Ok(report)
    }
}

/// Figure 9 data: cholesky across LLC sizes.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// One bar triple per LLC size.
    pub bars: Vec<InterferenceBar>,
    /// Core/thread count of the runs (16 in the paper).
    pub cores: usize,
}

/// The LLC sizes of the sweep, in MiB.
pub const LLC_SIZES_MIB: [usize; 4] = [2, 4, 8, 16];

/// Regenerates Figure 9.
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_fig9(scale: f64) -> Fig9 {
    run_fig9_params(&StudyParams::with_scale(scale))
}

/// [`run_fig9`] honoring the thread-count override (the LLC sizes are
/// the figure's swept variable; `llc_mib` is ignored).
///
/// # Panics
///
/// Panics if a simulation fails.
#[must_use]
pub fn run_fig9_params(params: &StudyParams) -> Fig9 {
    let cores = params.single_count(16);
    let p = workloads::find("cholesky", Suite::Splash2).expect("catalog entry");
    let p = scaled_profile(&p, params.scale);
    let bars = map_mode(params.parallelism, LLC_SIZES_MIB.to_vec(), |mib| {
        let opts = RunOptions {
            mem: MemConfig::default().with_llc_mib(mib),
            ..RunOptions::symmetric(cores)
        };
        let out = run_profile(&p, &opts, None).expect("run");
        InterferenceBar {
            label: format!("{mib}MB"),
            negative: out.stack.component(Component::NegativeLlc),
            positive: out.stack.positive_interference(),
        }
    });
    Fig9 { bars, cores }
}

impl Fig9 {
    /// Converts the figure into its structured [`Report`].
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = format!(
            "Figure 9: cholesky LLC interference vs LLC size ({} cores)",
            self.cores
        );
        let mut report = Report::new("fig9", &title);
        report.push(Block::line(&title));
        report.push(Block::Table(interference_table(
            "interference_vs_llc",
            "LLC",
            8,
            &self.bars,
        )));
        report
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// Figure 9 as a registry [`Study`] (honors `scale`, `threads` — the
/// last entry — and `parallelism`).
#[derive(Debug, Clone, Copy)]
pub struct Fig9Study;

impl Study for Fig9Study {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn description(&self) -> &'static str {
        "Cholesky LLC interference vs LLC size, 2-16 MB (16 cores)"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let mut report = run_fig9_params(params).to_report();
        params.record(&mut report);
        Ok(report)
    }
}
