//! # experiments — the paper's evaluation, regenerated
//!
//! One module per figure/table of *"Speedup Stacks: Identifying Scaling
//! Bottlenecks in Multi-Threaded Applications"* (ISPASS 2012), plus the
//! shared [`runner`]. Each module exposes a `run` function returning
//! structured data and implements `Display` to print the same rows/series
//! the paper reports. The `repro` binary drives them
//! (`cargo run -p experiments --bin repro -- fig4`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fig1;
pub mod fig23;
pub mod fig45;
pub mod fig6;
pub mod fig7;
pub mod fig89;
pub mod hwcost;
pub mod par;
pub mod regions_demo;
pub mod runner;

pub use par::{map_mode, par_map, Parallelism};
pub use runner::{
    run_grid, run_profile, scaled_profile, single_thread_reference, RunOptions, RunOutcome,
};
