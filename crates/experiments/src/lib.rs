//! # experiments — the paper's evaluation, regenerated
//!
//! One module per figure/table of *"Speedup Stacks: Identifying Scaling
//! Bottlenecks in Multi-Threaded Applications"* (ISPASS 2012), plus the
//! shared [`runner`] and the beyond-the-paper many-core [`scaling`]
//! study (speedup stacks from 1 to 128 cores). Every experiment is a
//! [`study::Study`]: enumerable through [`registry`], parameterized by
//! typed [`study::StudyParams`] and returning a structured
//! [`speedup_stacks::report::Report`] that renders as text, JSON or CSV.
//! The `repro` binary drives them uniformly: `repro --list`,
//! `cargo run -p experiments --bin repro -- fig4 --format json`, or
//! `repro scaling` for the many-core study. Each module additionally
//! keeps its figure data struct (`run` returning e.g. `Fig4`) whose
//! `Display` renders the same report's text form.
//!
//! Every experiment reduces to the [`runner`] recipe: run a workload
//! multi-threaded (that run drives the accounting and yields the
//! *estimated* speedup), run it single-threaded for Eq. 1's `Ts`, and
//! attach the *actual* speedup for validation. Figure grids fan their
//! independent points out over [`par`]'s deterministic thread pool.
//!
//! ## Example
//!
//! ```
//! use experiments::{run_profile, scaled_profile, RunOptions};
//! use workloads::{find, Suite};
//!
//! // One validated point of the Figure 4 grid, scaled down for speed.
//! let p = scaled_profile(&find("blackscholes", Suite::ParsecSmall).unwrap(), 0.05);
//! let out = run_profile(&p, &RunOptions::symmetric(2), None).unwrap();
//! assert_eq!(out.threads, 2);
//! assert!(out.actual > 1.0 && out.estimated > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod decompose;
pub mod fig1;
pub mod fig23;
pub mod fig45;
pub mod fig6;
pub mod fig7;
pub mod fig89;
pub mod hwcost;
pub mod input;
pub mod journal;
pub mod par;
pub mod regions_demo;
pub mod runner;
pub mod scaling;
pub mod study;

pub use journal::JournalSpec;
pub use par::{map_mode, par_map, try_map_mode, Parallelism, PointOutcome};
pub use runner::{
    run_grid, run_grid_ft, run_profile, run_profile_streams, scaled_profile,
    single_thread_reference, single_thread_reference_streams, FaultPolicy, GridReport,
    PointSummary, RunOptions, RunOutcome, SweepOptions,
};
pub use study::{find_study, registry, Study, StudyParams};
pub use workloads::trace::TraceSpec;
