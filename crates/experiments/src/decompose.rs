//! Per-point decomposition of the grid studies — the unit of work the
//! study service shards across its worker pool.
//!
//! The four grid studies (`fig1`, `fig4`, `fig5`, `fig6`) all reduce to
//! the same sweep shape: a (benchmark × thread-count) grid of
//! independent points, each computed as one [`crate::runner`] recipe
//! run, folded into a figure-specific [`Report`]. [`decompose`] exposes
//! that shape directly: the exact profile list and count list the
//! study's own [`run_grid_ft`](crate::runner::run_grid_ft) sweep would
//! use, per-point compute entry points that replicate the sweep's
//! closures bit for bit, and [`GridStudy::assemble`], which folds a set
//! of completed [`PointSummary`] values back into a report
//! **byte-identical** to the one [`crate::study::Study::run`] produces
//! locally — the fig modules route their own sweeps through the same
//! fold functions, so the two paths cannot drift.
//!
//! Point indices are row-major in the same deterministic order the
//! sweep uses: `index = profile_index * counts.len() + count_index`.
//!
//! # Examples
//!
//! ```
//! use experiments::decompose::decompose;
//! use experiments::study::StudyParams;
//!
//! let params = StudyParams::default();
//! let grid = decompose("fig6", &params).unwrap();
//! assert_eq!(grid.n_points(), 28);
//! assert_eq!(grid.point(0), (0, 16));
//! assert!(decompose("hwcost", &params).is_none());
//! ```

use speedup_stacks::report::{Block, Degraded, Provenance, Report};
use speedup_stacks::SimError;
use workloads::{display_name, Suite, WorkloadProfile};

use crate::runner::{
    run_profile, scaled_profile, single_thread_reference, PointSummary, RunOptions,
};
use crate::study::StudyParams;

/// The run options every grid study uses for an `n`-thread point: the
/// default symmetric machine with the parameters' memory hierarchy.
#[must_use]
pub fn options(params: &StudyParams, n: usize) -> RunOptions {
    RunOptions {
        mem: params.mem(),
        ..RunOptions::symmetric(n)
    }
}

/// Finalizes a figure report the way every grid [`crate::study::Study`]
/// does: a `Degraded` block only when something actually degraded (so
/// clean, resumed and remotely-assembled reports stay byte-identical),
/// the capture provenance when a trace was written, then the echoed
/// parameters.
#[must_use]
pub fn finish(
    mut report: Report,
    params: &StudyParams,
    degraded: Degraded,
    provenance: Option<Provenance>,
) -> Report {
    if degraded.is_degraded() {
        report.push(Block::Degraded(degraded));
    }
    if let Some(p) = provenance {
        report.push(Block::Provenance(p));
    }
    params.record(&mut report);
    report
}

/// A grid study decomposed into its independent per-point work units.
#[derive(Debug, Clone)]
pub struct GridStudy {
    study: &'static str,
    profiles: Vec<WorkloadProfile>,
    counts: Vec<usize>,
}

/// The three case-study benchmarks (Figures 1 and 5), scaled.
fn case_study_profiles(params: &StudyParams) -> Vec<WorkloadProfile> {
    [
        workloads::find("blackscholes", Suite::ParsecMedium).expect("catalog entry"),
        workloads::find("facesim", Suite::ParsecMedium).expect("catalog entry"),
        workloads::find("cholesky", Suite::Splash2).expect("catalog entry"),
    ]
    .iter()
    .map(|p| scaled_profile(p, params.scale))
    .collect()
}

/// The full 28-benchmark paper suite (Figures 4 and 6), scaled.
fn suite_profiles(params: &StudyParams) -> Vec<WorkloadProfile> {
    workloads::paper_suite()
        .iter()
        .map(|p| scaled_profile(p, params.scale))
        .collect()
}

/// Decomposes a registry study into its per-point grid. `None` for
/// studies that are not (benchmark × thread-count) grids — exactly the
/// studies whose [`crate::study::Study::supports_journal`] is `false`.
#[must_use]
pub fn decompose(study: &str, params: &StudyParams) -> Option<GridStudy> {
    let (study, profiles, counts) = match study {
        // Figure 1 sweeps only the multi-threaded counts; the 1-thread
        // point is 1.0 by definition and synthesized at fold time.
        "fig1" => (
            "fig1",
            case_study_profiles(params),
            params
                .counts_or(&crate::fig1::THREAD_COUNTS)
                .into_iter()
                .filter(|&n| n > 1)
                .collect(),
        ),
        "fig4" => (
            "fig4",
            suite_profiles(params),
            params.counts_or(&crate::fig45::THREAD_COUNTS),
        ),
        "fig5" => (
            "fig5",
            case_study_profiles(params),
            params.counts_or(&crate::fig45::THREAD_COUNTS),
        ),
        "fig6" => (
            "fig6",
            suite_profiles(params),
            vec![params.single_count(16)],
        ),
        _ => return None,
    };
    Some(GridStudy {
        study,
        profiles,
        counts,
    })
}

impl GridStudy {
    /// The registry key this grid belongs to.
    #[must_use]
    pub fn study(&self) -> &'static str {
        self.study
    }

    /// The scaled workload profiles, in sweep order.
    #[must_use]
    pub fn profiles(&self) -> &[WorkloadProfile] {
        &self.profiles
    }

    /// The swept thread counts, in sweep order.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of grid points.
    #[must_use]
    pub fn n_points(&self) -> usize {
        self.profiles.len() * self.counts.len()
    }

    /// The `(profile_index, thread_count)` of a point, row-major in the
    /// sweep's deterministic order.
    ///
    /// # Panics
    ///
    /// Panics when `index >= n_points()`.
    #[must_use]
    pub fn point(&self, index: usize) -> (usize, usize) {
        assert!(index < self.n_points(), "point index out of range");
        (
            index / self.counts.len(),
            self.counts[index % self.counts.len()],
        )
    }

    /// The point's human-readable label, exactly as the fault-tolerant
    /// sweep would report it in a `Degraded` block.
    #[must_use]
    pub fn label(&self, index: usize) -> String {
        let (pi, n) = self.point(index);
        format!("{} x{}", display_name(&self.profiles[pi]), n)
    }

    /// The display name of a profile (the key single-thread references
    /// are shared under).
    #[must_use]
    pub fn profile_name(&self, pi: usize) -> String {
        display_name(&self.profiles[pi])
    }

    /// Validates every profile up front, the way the sweep does:
    /// configuration mistakes are not point faults.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for the first invalid profile.
    pub fn validate(&self) -> Result<(), SimError> {
        for p in &self.profiles {
            p.validate().map_err(SimError::Config)?;
        }
        Ok(())
    }

    /// Validates a point-index subset (a sharded submit's `units`
    /// field) and normalizes it: sorted ascending, duplicates removed.
    /// The subset must be non-empty and every index must be in range.
    ///
    /// # Errors
    ///
    /// A human-readable reason suitable for a `bad-units` protocol
    /// rejection.
    pub fn validate_units(&self, units: &[usize]) -> Result<Vec<usize>, String> {
        if units.is_empty() {
            return Err("units must name at least one grid point".to_string());
        }
        let n = self.n_points();
        if let Some(bad) = units.iter().find(|&&u| u >= n) {
            return Err(format!(
                "unit index {bad} is out of range (this grid has {n} points)"
            ));
        }
        let mut subset = units.to_vec();
        subset.sort_unstable();
        subset.dedup();
        Ok(subset)
    }

    /// Computes one profile's single-thread reference `(Ts, instructions)`
    /// with the identical options the sweep uses (including the fault
    /// policy's cooperative deadline).
    ///
    /// # Errors
    ///
    /// The engine error rendered as a string (the caller's fault domain
    /// treats it like a point failure).
    pub fn compute_reference(&self, params: &StudyParams, pi: usize) -> Result<(u64, u64), String> {
        let mut opts = options(params, 1);
        opts.deadline_cycles = opts.deadline_cycles.or(params.faults.deadline_cycles);
        single_thread_reference(&self.profiles[pi], &opts).map_err(|e| e.to_string())
    }

    /// Computes one grid point given its profile's reference, with the
    /// identical options the sweep uses.
    ///
    /// # Errors
    ///
    /// The engine error rendered as a string.
    pub fn compute_point(
        &self,
        params: &StudyParams,
        index: usize,
        st: (u64, u64),
    ) -> Result<PointSummary, String> {
        let (pi, n) = self.point(index);
        let mut opts = options(params, n);
        opts.deadline_cycles = opts.deadline_cycles.or(params.faults.deadline_cycles);
        run_profile(&self.profiles[pi], &opts, Some(st))
            .map(PointSummary::from)
            .map_err(|e| e.to_string())
    }

    /// Folds completed points (indexed by point index; `None` marks a
    /// failed point) into the study's final [`Report`], byte-identical
    /// to a local [`crate::study::Study::run`] with the same parameters
    /// and outcomes. `degraded.failed`, `retried` and `quarantined` are
    /// the caller's; the grid totals are filled in here.
    ///
    /// # Panics
    ///
    /// Panics when `points.len() != n_points()`.
    #[must_use]
    pub fn assemble(
        &self,
        params: &StudyParams,
        points: Vec<Option<PointSummary>>,
        mut degraded: Degraded,
        provenance: Option<Provenance>,
    ) -> Report {
        assert_eq!(points.len(), self.n_points(), "one slot per grid point");
        let mut rows: Vec<Vec<Option<PointSummary>>> = Vec::with_capacity(self.profiles.len());
        let mut it = points.into_iter();
        for _ in 0..self.profiles.len() {
            rows.push(
                (0..self.counts.len())
                    .map(|_| it.next().expect("sized"))
                    .collect(),
            );
        }
        degraded.total_points = self.n_points();
        degraded.completed = rows.iter().flatten().filter(|s| s.is_some()).count();
        let report = match self.study {
            "fig1" => crate::fig1::fold(params, &self.profiles, rows).to_report(),
            "fig4" => crate::fig45::fold_fig4(params, rows).to_report(),
            "fig5" => crate::fig45::fold_fig5(rows).to_report(),
            "fig6" => crate::fig6::fold(params, rows).to_report(),
            _ => unreachable!("decompose() only builds grid studies"),
        };
        finish(report, params, degraded, provenance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{find_study, registry};

    #[test]
    fn decomposable_exactly_when_journal_capable() {
        for s in registry() {
            assert_eq!(
                decompose(s.name(), &StudyParams::default()).is_some(),
                s.supports_journal(),
                "{}",
                s.name()
            );
        }
        assert!(decompose("bogus", &StudyParams::default()).is_none());
    }

    #[test]
    fn point_indexing_is_row_major() {
        let params = StudyParams {
            threads: Some(vec![2, 4]),
            ..StudyParams::default()
        };
        let grid = decompose("fig1", &params).unwrap();
        assert_eq!(grid.profiles().len(), 3);
        assert_eq!(grid.counts(), &[2, 4]);
        assert_eq!(grid.n_points(), 6);
        assert_eq!(grid.point(0), (0, 2));
        assert_eq!(grid.point(1), (0, 4));
        assert_eq!(grid.point(5), (2, 4));
        assert_eq!(grid.label(5), format!("{} x4", grid.profile_name(2)));
    }

    #[test]
    fn fig1_grid_filters_the_single_thread_point() {
        let params = StudyParams {
            threads: Some(vec![1, 2, 4]),
            ..StudyParams::default()
        };
        let grid = decompose("fig1", &params).unwrap();
        assert_eq!(grid.counts(), &[2, 4], "1-thread point is synthesized");
    }

    #[test]
    fn assembled_report_matches_local_run() {
        // The decisive invariant: compute every point through the
        // decomposition API and fold — the result must be byte-identical
        // to the study's own run in all three formats.
        let params = StudyParams {
            scale: 0.02,
            threads: Some(vec![2, 4]),
            ..StudyParams::default()
        };
        for name in ["fig1", "fig4", "fig5", "fig6"] {
            let params = if name == "fig4" || name == "fig6" {
                // Keep the 28-benchmark grids cheap.
                StudyParams {
                    scale: 0.01,
                    threads: Some(vec![2]),
                    ..StudyParams::default()
                }
            } else {
                params.clone()
            };
            let grid = decompose(name, &params).unwrap();
            grid.validate().unwrap();
            let mut refs = Vec::new();
            for pi in 0..grid.profiles().len() {
                refs.push(grid.compute_reference(&params, pi).unwrap());
            }
            let points: Vec<Option<PointSummary>> = (0..grid.n_points())
                .map(|i| {
                    let (pi, _) = grid.point(i);
                    Some(grid.compute_point(&params, i, refs[pi]).unwrap())
                })
                .collect();
            let assembled = grid.assemble(&params, points, Degraded::default(), None);
            let local = find_study(name).unwrap().run(&params).unwrap();
            assert_eq!(assembled.to_text(), local.to_text(), "{name} text");
            assert_eq!(assembled.to_json(), local.to_json(), "{name} json");
            assert_eq!(assembled.to_csv(), local.to_csv(), "{name} csv");
        }
    }
}
