//! Calibration helper: runs every catalog benchmark at 16 threads (and a
//! single-threaded reference) and prints measured vs paper speedups plus
//! the dominant stack components, so catalog parameters can be tuned.

use experiments::{par_map, run_profile, scaled_profile, RunOptions};
use speedup_stacks::Component;
use workloads::display_name;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let only: Option<String> = std::env::args().nth(2);
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>6}  components (top, in speedup units)",
        "benchmark", "paper", "actual", "est", "err%"
    );
    let selected: Vec<workloads::WorkloadProfile> = workloads::paper_suite()
        .into_iter()
        .filter(|p| {
            only.as_ref()
                .is_none_or(|f| display_name(p).contains(f.as_str()))
        })
        .collect();
    // All benchmarks as one parallel sweep; rows print in catalog order.
    let rows = par_map(selected, |p| {
        let name = display_name(&p);
        let scaled = scaled_profile(&p, scale);
        let t0 = std::time::Instant::now();
        let line = match run_profile(&scaled, &RunOptions::symmetric(16), None) {
            Ok(out) => {
                let ranked = out.stack.overheads().ranked();
                let comps: Vec<String> = ranked
                    .iter()
                    .take(4)
                    .filter(|(_, v)| *v > 0.16)
                    .map(|(c, v)| format!("{}={:.2}", c.label(), v))
                    .collect();
                let _ = Component::ALL; // keep import used
                format!(
                    "{:<22} {:>7.2} {:>7.2} {:>7.2} {:>6.1}  pos={:.2} {}  [{:.1}s]",
                    name,
                    p.paper_speedup16,
                    out.actual,
                    out.estimated,
                    out.error() * 100.0,
                    out.stack.positive_interference(),
                    comps.join(" "),
                    t0.elapsed().as_secs_f64(),
                )
            }
            Err(e) => format!("{name:<22} ERROR: {e}"),
        };
        line
    });
    for row in rows {
        println!("{row}");
    }
}
