//! Calibration helper: runs every catalog benchmark at 16 threads (and a
//! single-threaded reference) and prints measured vs paper speedups plus
//! the dominant stack components, so catalog parameters can be tuned.

use experiments::{run_profile, scaled_profile, RunOptions};
use speedup_stacks::Component;
use workloads::display_name;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let only: Option<String> = std::env::args().nth(2);
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>6}  components (top, in speedup units)",
        "benchmark", "paper", "actual", "est", "err%"
    );
    for p in workloads::paper_suite() {
        let name = display_name(&p);
        if let Some(f) = &only {
            if !name.contains(f.as_str()) {
                continue;
            }
        }
        let p = scaled_profile(&p, scale);
        let t0 = std::time::Instant::now();
        match run_profile(&p, &RunOptions::symmetric(16), None) {
            Ok(out) => {
                let ranked = out.stack.overheads().ranked();
                let comps: Vec<String> = ranked
                    .iter()
                    .take(4)
                    .filter(|(_, v)| *v > 0.16)
                    .map(|(c, v)| format!("{}={:.2}", c.label(), v))
                    .collect();
                println!(
                    "{:<22} {:>7.2} {:>7.2} {:>7.2} {:>6.1}  pos={:.2} {}  [{:.1}s]",
                    name,
                    p.paper_speedup16,
                    out.actual,
                    out.estimated,
                    out.error() * 100.0,
                    out.stack.positive_interference(),
                    comps.join(" "),
                    t0.elapsed().as_secs_f64(),
                );
                let _ = Component::ALL; // keep import used
            }
            Err(e) => println!("{name:<22} ERROR: {e}"),
        }
    }
}
