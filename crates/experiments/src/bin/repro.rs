//! `repro` — regenerate every figure and table of the speedup-stacks
//! paper through the study registry.
//!
//! Usage:
//!
//! ```text
//! repro <study|all> [--scale F] [--format text|json|csv]
//!       [--threads N[,N...]] [--parallelism auto|serial|N] [--llc-mib N]
//! repro --list
//! ```
//!
//! `--list` enumerates every registered study with its description.
//! Every study renders from the same structured `Report` value in all
//! three formats; `--format text` is bit-identical to the historical
//! figure output (pinned by the golden tests).
//!
//! `scaling` is the many-core study beyond the paper: speedup stacks
//! across a 1→128-core sweep of weak-scaling workloads and a
//! multi-program rate mix (`experiments::scaling`).
//!
//! `--scale` scales the workload sizes (default 1.0; use e.g. 0.25 for a
//! quick pass).

use std::process::ExitCode;

use experiments::study::{find_study, registry, Study, StudyParams};
use experiments::Parallelism;

const USAGE: &str = "usage: repro <fig1..fig9|hwcost|regions|scaling|all> [--scale F] \
[--format text|json|csv] [--threads N[,N...]] [--parallelism auto|serial|N] [--llc-mib N]\n   \
or: repro --list";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

#[derive(Debug)]
enum Command {
    List,
    Run { which: String, format: Format },
}

struct Cli {
    command: Command,
    params: StudyParams,
}

fn parse_threads(spec: &str) -> Result<Vec<usize>, String> {
    let counts: Result<Vec<usize>, _> = spec.split(',').map(str::parse::<usize>).collect();
    match counts {
        Ok(c) if !c.is_empty() && c.iter().all(|&n| n >= 1) => Ok(c),
        _ => Err(format!(
            "--threads requires a comma-separated list of counts >= 1, got '{spec}'"
        )),
    }
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut which: Option<String> = None;
    let mut list = false;
    let mut format = Format::Text;
    let mut params = StudyParams::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => list = true,
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v > 0.0 => params.scale = v,
                _ => return Err("--scale requires a positive finite number".to_string()),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("csv") => format = Format::Csv,
                _ => return Err("--format requires one of: text, json, csv".to_string()),
            },
            "--threads" => match it.next() {
                Some(spec) => params.threads = Some(parse_threads(spec)?),
                None => return Err("--threads requires a comma-separated list".to_string()),
            },
            "--parallelism" => match it.next().map(String::as_str) {
                Some("auto") => params.parallelism = Parallelism::Auto,
                Some("serial") => params.parallelism = Parallelism::Serial,
                Some(n) => match n.parse::<usize>() {
                    Ok(w) if w >= 1 => params.parallelism = Parallelism::Workers(w),
                    _ => {
                        return Err(
                            "--parallelism requires auto, serial or a worker count".to_string()
                        )
                    }
                },
                None => return Err("--parallelism requires a mode".to_string()),
            },
            "--llc-mib" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(mib) if mib >= 1 => params.llc_mib = Some(mib),
                _ => return Err("--llc-mib requires a capacity in MiB >= 1".to_string()),
            },
            other if other.starts_with("--") => {
                return Err(format!("unknown option: {other}"));
            }
            other if which.is_none() => which = Some(other.to_string()),
            other => return Err(format!("unexpected argument: {other}")),
        }
    }
    if list {
        return Ok(Cli {
            command: Command::List,
            params,
        });
    }
    let Some(which) = which else {
        return Err("missing experiment name".to_string());
    };
    if which != "all" && find_study(&which).is_none() {
        return Err(format!("unknown experiment: {which}"));
    }
    Ok(Cli {
        command: Command::Run { which, format },
        params,
    })
}

fn emit(study: &dyn Study, params: &StudyParams, format: Format) {
    let report = study.run(params);
    match format {
        Format::Text => println!("{}", report.to_text()),
        Format::Json => print!("{}", report.to_json()),
        Format::Csv => print!("{}", report.to_csv()),
    }
}

fn run_all(params: &StudyParams, format: Format) {
    match format {
        Format::Text => {
            for study in registry() {
                println!("================================================================");
                emit(*study, params, format);
                println!();
            }
        }
        Format::Json => {
            print!("[");
            for (i, study) in registry().iter().enumerate() {
                if i > 0 {
                    print!(",");
                }
                emit(*study, params, format);
            }
            println!("]");
        }
        Format::Csv => {
            for (i, study) in registry().iter().enumerate() {
                if i > 0 {
                    println!();
                }
                emit(*study, params, format);
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("repro: {message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match cli.command {
        Command::List => {
            for study in registry() {
                println!("{:<8} {}", study.name(), study.description());
            }
        }
        Command::Run { which, format } => {
            if which == "all" {
                run_all(&cli.params, format);
            } else {
                let study = find_study(&which).expect("validated in parse_args");
                emit(study, &cli.params, format);
            }
        }
    }
    ExitCode::SUCCESS
}
