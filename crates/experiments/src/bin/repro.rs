//! `repro` — regenerate every figure and table of the speedup-stacks
//! paper.
//!
//! Usage:
//!
//! ```text
//! repro <fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|hwcost|regions|scaling|all> [--scale F]
//! ```
//!
//! `scaling` is the many-core study beyond the paper: speedup stacks
//! across a 1→128-core sweep of weak-scaling workloads and a
//! multi-program rate mix (`experiments::scaling`).
//!
//! `--scale` scales the workload sizes (default 1.0; use e.g. 0.25 for a
//! quick pass).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut scale = 1.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 => scale = v,
                _ => {
                    eprintln!("--scale requires a positive number");
                    return ExitCode::FAILURE;
                }
            },
            other if which.is_none() => which = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(which) = which else {
        eprintln!("usage: repro <fig1..fig9|hwcost|regions|scaling|all> [--scale F]");
        return ExitCode::FAILURE;
    };

    let run_one = |name: &str| match name {
        "fig1" => println!("{}", experiments::fig1::run(scale)),
        "fig2" => println!("{}", experiments::fig23::run_fig2(scale)),
        "fig3" => println!("{}", experiments::fig23::run_fig3(scale)),
        "fig4" => println!("{}", experiments::fig45::run(scale)),
        "fig5" => println!("{}", experiments::fig45::run_fig5(scale)),
        "fig6" => println!("{}", experiments::fig6::run(scale)),
        "fig7" => println!("{}", experiments::fig7::run(scale)),
        "fig8" => println!("{}", experiments::fig89::run_fig8(scale)),
        "fig9" => println!("{}", experiments::fig89::run_fig9(scale)),
        "hwcost" => println!("{}", experiments::hwcost::run()),
        "regions" => println!("{}", experiments::regions_demo::run(scale)),
        "scaling" => println!("{}", experiments::scaling::run(scale)),
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(1);
        }
    };

    if which == "all" {
        for name in [
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "hwcost",
            "regions", "scaling",
        ] {
            println!("================================================================");
            run_one(name);
            println!();
        }
    } else {
        run_one(&which);
    }
    ExitCode::SUCCESS
}
