//! `tracecheck` — fully validate a binary workload trace.
//!
//! Usage: `tracecheck PATH` (or `tracecheck -` to read the trace from
//! stdin — the shared [`experiments::input::InputSource`] convention
//! with `jsoncheck`; the stream is spilled to a temporary file because
//! verification seeks). Walks the whole file: magic, format version,
//! header checksum, every run-info and chunk frame CRC, and every op
//! decode ([`workloads::trace::verify`]) — exactly the validation a
//! replay performs, without running any simulation. On success it prints
//! the trace's identity and statistics and exits 0; on any damage it
//! prints the typed reason and exits with the trace error code (9,
//! matching `repro`'s exit-code map). Exit 1 is a usage error.
//!
//! CI runs this on the trace captured by the capture→replay smoke step.

use std::process::ExitCode;

use experiments::input::InputSource;
use speedup_stacks::SimError;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(arg), None) = (args.next(), args.next()) else {
        eprintln!("usage: tracecheck PATH|-");
        return ExitCode::FAILURE;
    };
    let source = InputSource::from_arg(Some(arg));
    let materialized = match source.materialize("tracecheck") {
        Ok(m) => m,
        Err(e) => {
            eprintln!("tracecheck: cannot read {}: {e}", source.label());
            return ExitCode::FAILURE;
        }
    };
    match workloads::trace::verify(materialized.path()) {
        Ok(stats) => {
            println!(
                "tracecheck: {}: ok (format v{}, study {}, fingerprint {}, \
                 {} run(s), {} ops, {} bytes)",
                source.label(),
                stats.version,
                stats.study,
                stats.fingerprint,
                stats.runs,
                stats.ops,
                stats.bytes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tracecheck: {}: {e}", source.label());
            ExitCode::from(SimError::from(e).exit_code())
        }
    }
}
