//! `jsoncheck` — validate that a JSON document parses, using the in-repo
//! parser (`speedup_stacks::report::json`); no external tools required.
//!
//! Reads the document from the file given as the first argument, or
//! from stdin when no argument is given. Exits 0 when the document is
//! well-formed JSON, 1 otherwise. CI pipes `repro all --format json`
//! through this to smoke-test the emitter.

use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut input = String::new();
    let source = match std::env::args().nth(1) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(s) => {
                input = s;
                path
            }
            Err(e) => {
                eprintln!("jsoncheck: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            if let Err(e) = std::io::stdin().read_to_string(&mut input) {
                eprintln!("jsoncheck: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            "<stdin>".to_string()
        }
    };
    match speedup_stacks::report::json::parse(&input) {
        Ok(_) => {
            eprintln!("jsoncheck: {source}: ok ({} bytes)", input.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jsoncheck: {source}: {e}");
            ExitCode::FAILURE
        }
    }
}
