//! `jsoncheck` — validate that a JSON document parses, using the in-repo
//! parser (`speedup_stacks::report::json`); no external tools required.
//!
//! Reads the document from the file given as the first argument, or
//! from stdin when the argument is `-` or omitted (shared
//! [`experiments::input::InputSource`] convention with `tracecheck`).
//! Exits 0 when the document is well-formed JSON, 1 otherwise. CI pipes
//! `repro all --format json` through this to smoke-test the emitter.

use std::process::ExitCode;

use experiments::input::InputSource;

fn main() -> ExitCode {
    let source = InputSource::from_arg(std::env::args().nth(1));
    let input = match source.read_to_string() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("jsoncheck: cannot read {}: {e}", source.label());
            return ExitCode::FAILURE;
        }
    };
    match speedup_stacks::report::json::parse(&input) {
        Ok(_) => {
            eprintln!("jsoncheck: {}: ok ({} bytes)", source.label(), input.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jsoncheck: {}: {e}", source.label());
            ExitCode::FAILURE
        }
    }
}
