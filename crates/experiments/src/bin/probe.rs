//! Diagnostic probe: decompose the estimation error for one benchmark.

use cmpsim::{simulate, MachineConfig};
use experiments::scaled_profile;
use speedup_stacks::AccountingConfig;
use workloads::{display_name, streams_for};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "radix".into());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let p = workloads::paper_suite()
        .into_iter()
        .find(|p| display_name(p).contains(&name))
        .expect("benchmark not found");
    let p = scaled_profile(&p, scale);

    let st = simulate(MachineConfig::with_cores(1), streams_for(&p, 1)).unwrap();
    let mt = simulate(MachineConfig::with_cores(16), streams_for(&p, 16)).unwrap();
    let stack = mt.stack(&AccountingConfig::default()).unwrap();

    let ts = st.tp_cycles as f64;
    let tp = mt.tp_cycles as f64;
    let ts_hat = stack.estimated_single_thread_cycles();
    println!("benchmark              {}", display_name(&p));
    println!("Ts (measured 1-thread) {ts:>14.0}");
    println!(
        "Ts_hat (estimated)     {ts_hat:>14.0}  (ratio {:.3})",
        ts_hat / ts
    );
    println!("Tp                     {tp:>14.0}");
    println!("actual S               {:>14.3}", ts / tp);
    println!("estimated S            {:>14.3}", stack.estimated_speedup());
    println!();
    println!(
        "ST: instr={} llc_acc={} llc_miss={}",
        st.total_instructions(),
        st.truth[0].llc_accesses,
        st.truth[0].llc_misses
    );
    let mt_instr = mt.total_instructions();
    let mt_acc: u64 = mt.truth.iter().map(|t| t.llc_accesses).sum();
    let mt_miss: u64 = mt.truth.iter().map(|t| t.llc_misses).sum();
    let mt_coh: u64 = mt.truth.iter().map(|t| t.coherency_misses).sum();
    let mt_inval: u64 = mt.truth.iter().map(|t| t.invalidations_sent).sum();
    println!("MT: instr={mt_instr} llc_acc={mt_acc} llc_miss={mt_miss} coh_miss={mt_coh} invals={mt_inval}");
    println!();
    println!("per-thread 0 counters: {:#?}", mt.counters[0]);
    println!("per-thread 0 truth:    {:?}", mt.truth[0]);
    println!();
    for (c, v) in stack.overheads().iter() {
        if v > 0.01 {
            println!("  {:<28} {v:>8.3}", c.to_string());
        }
    }
    println!(
        "  {:<28} {:>8.3}",
        "positive interference",
        stack.positive_interference()
    );
    // Average exposed miss penalty ST vs MT.
    let st_pen =
        st.counters[0].llc_load_miss_stall_cycles / st.counters[0].llc_load_misses.max(1) as f64;
    let mt_pen: f64 = mt
        .counters
        .iter()
        .map(|c| c.llc_load_miss_stall_cycles)
        .sum::<f64>()
        / mt.counters
            .iter()
            .map(|c| c.llc_load_misses)
            .sum::<u64>()
            .max(1) as f64;
    println!("\navg exposed miss penalty: ST={st_pen:.1} MT={mt_pen:.1}");
    let st_misses_per_kinstr =
        st.truth[0].llc_misses as f64 / st.total_instructions() as f64 * 1000.0;
    let mt_misses_per_kinstr = mt_miss as f64 / mt_instr as f64 * 1000.0;
    println!("llc misses per kinstr:    ST={st_misses_per_kinstr:.2} MT={mt_misses_per_kinstr:.2}");
}
