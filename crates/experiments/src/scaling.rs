//! The many-core scaling study: speedup stacks from 1 to 128 cores.
//!
//! The paper evaluates speedup stacks at up to 16 cores; this study
//! drives the same accounting architecture across a 1→128-core sweep to
//! show where each workload's scaling delimiters take over at core
//! counts the paper never reached. Three ingredients make the sweep
//! meaningful beyond 16 threads:
//!
//! - **weak-scaling workloads** ([`workloads::weak_scaling_suite`]):
//!   per-thread work is held at the paper's 16-thread share, so 128
//!   threads have real work instead of a starved strong-scaled input;
//! - a **multi-program rate mix** ([`workloads::rate_mix_streams`]):
//!   independent single-threaded programs contending only through the
//!   shared LLC and DRAM — the pure-interference end of the spectrum;
//! - a **many-core memory system**: a 4 MiB, 32-way LLC, exercising the
//!   wide (byte-ranked) LRU encoding, with the coherence directory in
//!   its spilled multi-word sharer representation above 64 cores.
//!
//! Weak-scaling points report the *scaled speedup* `n · Ts / Tp` (the MT
//! run does `n` times the ST reference work); the rate mix reports the
//! rate speedup `Σᵢ Ts(i) / Tp`. Each point also carries the full
//! speedup stack rendered by [`speedup_stacks::render::render_sweep`].

use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use cmpsim::{MachineConfig, SimResult, Simulation};
use memsim::{CacheConfig, MemConfig};
use speedup_stacks::render::RenderOptions;
use speedup_stacks::report::{Block, Column, Degraded, DegradedPoint, Report, Table, Unit, Value};
use speedup_stacks::{AccountingConfig, SimError, SpeedupStack};
use workloads::{
    default_rate_mix, display_name, find, rate_mix_streams, streams_for, RateMixStream, Suite,
    WorkloadProfile,
};

use crate::runner::FaultPolicy;
use crate::study::{Study, StudyParams};

/// The swept core counts: powers of two from 1 to 128 (the paper stops
/// at 16; everything above exercises the many-core representations).
pub const CORE_COUNTS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The study's memory system: the paper's defaults with the LLC grown to
/// 4 MiB × 32 ways — a plausible many-core LLC that selects the wide
/// LRU encoding (`ways > 16`).
#[must_use]
pub fn manycore_mem() -> MemConfig {
    MemConfig {
        llc: CacheConfig::from_kib(4096, 64, 32),
        ..MemConfig::default()
    }
}

/// One swept point of one workload.
#[derive(Debug)]
pub struct ScalingPoint {
    /// Hardware cores (== software threads at this point).
    pub cores: usize,
    /// The speedup stack of the multi-threaded run, with the scaled
    /// speedup attached as the actual.
    pub stack: SpeedupStack,
    /// Estimated speedup `Ŝ` from the stack (Eq. 4).
    pub estimated: f64,
    /// Scaled speedup: `n · Ts / Tp` for weak-scaling workloads (the MT
    /// run does `n×` the reference work), `Σᵢ Ts(i) / Tp` for the rate
    /// mix.
    pub scaled_speedup: f64,
    /// Multi-threaded run duration in cycles.
    pub mt_cycles: u64,
    /// Engine events of the multi-threaded run.
    pub events: u64,
}

/// One workload's 1→128-core series.
#[derive(Debug)]
pub struct ScalingSeries {
    /// Workload display name (`*_weak` variants and `rate_mix`).
    pub name: String,
    /// One point per swept core count, in [`CORE_COUNTS`] order.
    pub points: Vec<ScalingPoint>,
}

/// The whole study.
#[derive(Debug)]
pub struct ScalingStudy {
    /// One series per workload.
    pub series: Vec<ScalingSeries>,
    /// Swept core counts.
    pub counts: Vec<usize>,
    /// The memory hierarchy the sweep ran on (reported in the figure
    /// header).
    pub mem: MemConfig,
}

impl ScalingStudy {
    /// Total engine events across every multi-threaded point (the
    /// perf-trajectory denominator for `BENCH_PR*.json`).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.series
            .iter()
            .flat_map(|s| s.points.iter())
            .map(|p| p.events)
            .sum()
    }

    /// Number of swept simulation points.
    #[must_use]
    pub fn total_points(&self) -> u64 {
        self.series.iter().map(|s| s.points.len() as u64).sum()
    }

    /// Converts the study into its structured [`Report`]: one sweep
    /// block per workload plus a machine-readable point table.
    #[must_use]
    pub fn to_report(&self) -> Report {
        let title = format!(
            "Many-core scaling study: speedup stacks at {:?} cores",
            self.counts
        );
        let mut report = Report::new("scaling", &title);
        report.push(Block::line(&title));
        report.push(Block::line(format!(
            "({} MiB {}-way LLC; weak-scaling workloads report scaled speedup n*Ts/Tp,\n\
             the rate mix reports sum(Ts_i)/Tp)",
            self.mem.llc.lines() * 64 / (1024 * 1024),
            self.mem.llc.ways(),
        )));
        let mut table = Table::new(
            "points",
            vec![
                Column::new("series"),
                Column::new("cores").unit(Unit::Count),
                Column::new("scaled_speedup").unit(Unit::Speedup),
                Column::new("estimated_speedup").unit(Unit::Speedup),
                Column::new("mt_cycles").unit(Unit::Cycles),
                Column::new("events").unit(Unit::Count),
            ],
        );
        for series in &self.series {
            for p in &series.points {
                table.row(vec![
                    Value::str(&series.name),
                    p.cores.into(),
                    p.scaled_speedup.into(),
                    p.estimated.into(),
                    p.mt_cycles.into(),
                    p.events.into(),
                ]);
            }
        }
        report.push(Block::hidden(Block::Table(table)));
        for series in &self.series {
            let bars: Vec<(String, SpeedupStack)> = series
                .points
                .iter()
                .map(|p| (format!("N={:>3}", p.cores), p.stack.clone()))
                .collect();
            report.push(Block::Blank);
            report.push(Block::Sweep {
                title: series.name.clone(),
                series: bars,
                options: RenderOptions::default(),
            });
        }
        report
    }
}

impl fmt::Display for ScalingStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_report().to_text())
    }
}

/// The study's weak-scaling workloads: one good scaler (blackscholes),
/// one synchronization-bound workload (cholesky: short hot critical
/// sections) and one imbalance-bound workload (lud: strong rotating
/// skew), each as its weak variant.
#[must_use]
pub fn study_profiles(scale: f64) -> Vec<WorkloadProfile> {
    [
        find("blackscholes", Suite::ParsecMedium).expect("catalog"),
        find("cholesky", Suite::Splash2).expect("catalog"),
        find("lud", Suite::Rodinia).expect("catalog"),
    ]
    .iter()
    .map(|p| crate::runner::scaled_profile(&p.weak_variant(), scale))
    .collect()
}

fn machine(cores: usize, mem: MemConfig) -> MachineConfig {
    MachineConfig {
        n_cores: cores,
        mem,
        ..MachineConfig::default()
    }
}

fn stack_of(mt: &SimResult, actual: f64) -> SpeedupStack {
    mt.stack(&AccountingConfig::default())
        .expect("engine produces valid counters")
        .with_actual_speedup(actual)
}

/// One fault-domained simulation: validates the machine and honors the
/// policy's cooperative deadline; any engine error becomes a rendered
/// reason for the point's `Degraded` entry.
fn sim(
    cfg: MachineConfig,
    streams: Vec<Box<dyn cmpsim::OpStream>>,
    deadline: Option<u64>,
) -> Result<SimResult, String> {
    cfg.validate()
        .map_err(|e| cmpsim::SimError::InvalidConfig(e).to_string())?;
    let sim = Simulation::new(cfg, streams);
    match deadline {
        Some(d) => sim.with_deadline(Arc::new(AtomicU64::new(d))),
        None => sim,
    }
    .run()
    .map_err(|e| e.to_string())
}

/// Tallies a fault-isolated sweep's outcomes into a series, pushing
/// failed points onto `degraded`.
fn collect_points(
    name: &str,
    outcomes: Vec<crate::par::PointOutcome<ScalingPoint>>,
    degraded: &mut Degraded,
) -> ScalingSeries {
    let mut points = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        if o.retried_ok() {
            degraded.retried += 1;
        }
        match o.result {
            Ok(p) => points.push(p),
            Err(e) => degraded.failed.push(DegradedPoint {
                label: e.label,
                reason: e.payload,
                attempts: e.attempts,
            }),
        }
    }
    ScalingSeries {
        name: name.to_string(),
        points,
    }
}

/// Runs one weak-scaling workload across `counts`, reusing the one
/// single-threaded reference (weak scaling: every thread's work equals
/// the ST run's). Each point runs in its own fault domain; a failed
/// reference cascades onto the whole series.
fn weak_series(
    profile: &WorkloadProfile,
    counts: &[usize],
    mode: crate::par::Parallelism,
    mem: MemConfig,
    faults: FaultPolicy,
    degraded: &mut Degraded,
) -> ScalingSeries {
    let name = display_name(profile);
    let st_outcome = crate::par::try_map_mode(
        crate::par::Parallelism::Serial,
        faults.retries,
        vec![()],
        |_| format!("{name} (single-thread reference)"),
        |_| {
            sim(
                machine(1, mem),
                streams_for(profile, 1),
                faults.deadline_cycles,
            )
        },
    )
    .pop()
    .expect("one reference outcome");
    if st_outcome.retried_ok() {
        degraded.retried += 1;
    }
    let st = match st_outcome.result {
        Ok(st) => st,
        Err(e) => {
            for &n in counts {
                degraded.failed.push(DegradedPoint {
                    label: format!("{name} x{n}"),
                    reason: format!("single-thread reference failed: {}", e.payload),
                    attempts: e.attempts,
                });
            }
            return ScalingSeries {
                name,
                points: Vec::new(),
            };
        }
    };
    let outcomes = crate::par::try_map_mode(
        mode,
        faults.retries,
        counts.to_vec(),
        |&n| format!("{name} x{n}"),
        |&n| {
            let mt = sim(
                machine(n, mem),
                streams_for(profile, n),
                faults.deadline_cycles,
            )?;
            let scaled = n as f64 * st.tp_cycles as f64 / mt.tp_cycles as f64;
            let stack = stack_of(&mt, scaled);
            Ok(ScalingPoint {
                cores: n,
                estimated: stack.estimated_speedup(),
                scaled_speedup: scaled,
                mt_cycles: mt.tp_cycles,
                events: mt.events,
                stack,
            })
        },
    );
    collect_points(&name, outcomes, degraded)
}

/// Runs the rate mix across `counts`. Per-program single-threaded
/// references are computed once from the first `programs.len()` members
/// and reused cyclically across wider mixes. Fault-isolated like
/// [`weak_series`].
fn mix_series(
    programs: &[WorkloadProfile],
    counts: &[usize],
    mode: crate::par::Parallelism,
    mem: MemConfig,
    faults: FaultPolicy,
    degraded: &mut Degraded,
) -> ScalingSeries {
    let ref_outcomes = crate::par::try_map_mode(
        mode,
        faults.retries,
        programs.iter().enumerate().collect(),
        |(i, p)| format!("{} (rate-mix reference {i})", display_name(p)),
        |&(i, p)| {
            let solo: Vec<Box<dyn cmpsim::OpStream>> = vec![Box::new(RateMixStream::new(p, i))];
            sim(machine(1, mem), solo, faults.deadline_cycles).map(|r| r.tp_cycles)
        },
    );
    let mut refs = Vec::with_capacity(programs.len());
    for o in ref_outcomes {
        if o.retried_ok() {
            degraded.retried += 1;
        }
        match o.result {
            Ok(c) => refs.push(c),
            Err(e) => {
                for &n in counts {
                    degraded.failed.push(DegradedPoint {
                        label: format!("rate_mix x{n}"),
                        reason: format!("single-thread reference failed: {}", e.payload),
                        attempts: e.attempts,
                    });
                }
                return ScalingSeries {
                    name: "rate_mix".to_string(),
                    points: Vec::new(),
                };
            }
        }
    }
    let outcomes = crate::par::try_map_mode(
        mode,
        faults.retries,
        counts.to_vec(),
        |&n| format!("rate_mix x{n}"),
        |&n| {
            let mt = sim(
                machine(n, mem),
                rate_mix_streams(programs, n),
                faults.deadline_cycles,
            )?;
            let ts_sum: u64 = (0..n).map(|i| refs[i % refs.len()]).sum();
            let rate = ts_sum as f64 / mt.tp_cycles as f64;
            let stack = stack_of(&mt, rate);
            Ok(ScalingPoint {
                cores: n,
                estimated: stack.estimated_speedup(),
                scaled_speedup: rate,
                mt_cycles: mt.tp_cycles,
                events: mt.events,
                stack,
            })
        },
    );
    collect_points("rate_mix", outcomes, degraded)
}

/// Runs the full study over [`CORE_COUNTS`] with workloads scaled by
/// `scale` (1.0 = the catalog sizes; use e.g. 0.25 for a quick pass).
///
/// # Panics
///
/// Panics if any swept point fails.
#[must_use]
pub fn run(scale: f64) -> ScalingStudy {
    run_with(scale, &CORE_COUNTS, crate::par::Parallelism::Auto)
}

/// Runs the study over explicit `counts` with the given sweep
/// parallelism (points are independent; collection order is
/// deterministic).
///
/// # Panics
///
/// Panics if any swept point fails.
#[must_use]
pub fn run_with(scale: f64, counts: &[usize], mode: crate::par::Parallelism) -> ScalingStudy {
    let (study, degraded) = run_mem(scale, counts, mode, manycore_mem(), FaultPolicy::default());
    assert!(
        !degraded.is_degraded(),
        "scaling sweep degraded: {degraded:?}"
    );
    study
}

/// Runs the study honoring the full [`StudyParams`]: `threads` overrides
/// the swept core counts and `llc_mib` resizes the (32-way) many-core
/// LLC.
///
/// # Panics
///
/// Panics if any swept point fails; use [`run_study_ft`] to degrade
/// gracefully instead.
#[must_use]
pub fn run_study(params: &StudyParams) -> ScalingStudy {
    let (study, degraded) = run_study_ft(params).expect("scaling sweep");
    assert!(
        !degraded.is_degraded(),
        "scaling sweep degraded: {degraded:?}"
    );
    study
}

/// Fault-tolerant [`run_study`]: each swept point runs in its own fault
/// domain (honoring `params.faults`), and failures surface in the
/// returned [`Degraded`] block instead of panicking.
///
/// # Errors
///
/// Returns [`SimError::Config`] if a study workload fails validation.
pub fn run_study_ft(params: &StudyParams) -> Result<(ScalingStudy, Degraded), SimError> {
    let counts = params.counts_or(&CORE_COUNTS);
    let mem = match params.llc_mib {
        Some(mib) => MemConfig {
            llc: CacheConfig::from_kib(mib * 1024, 64, 32),
            ..MemConfig::default()
        },
        None => manycore_mem(),
    };
    for p in study_profiles(params.scale) {
        p.validate().map_err(SimError::Config)?;
    }
    Ok(run_mem(
        params.scale,
        &counts,
        params.parallelism,
        mem,
        params.faults,
    ))
}

fn run_mem(
    scale: f64,
    counts: &[usize],
    mode: crate::par::Parallelism,
    mem: MemConfig,
    faults: FaultPolicy,
) -> (ScalingStudy, Degraded) {
    let mut degraded = Degraded {
        // 3 weak workloads + the rate mix, one point per count each.
        total_points: 4 * counts.len(),
        ..Degraded::default()
    };
    let mut series: Vec<ScalingSeries> = study_profiles(scale)
        .iter()
        .map(|p| weak_series(p, counts, mode, mem, faults, &mut degraded))
        .collect();
    let mix: Vec<WorkloadProfile> = default_rate_mix()
        .iter()
        .map(|p| crate::runner::scaled_profile(p, scale))
        .collect();
    series.push(mix_series(&mix, counts, mode, mem, faults, &mut degraded));
    degraded.completed = series.iter().map(|s| s.points.len()).sum();
    (
        ScalingStudy {
            series,
            counts: counts.to_vec(),
            mem,
        },
        degraded,
    )
}

/// The many-core scaling study as a registry [`Study`] (honors `scale`,
/// `threads` — the swept core counts — `parallelism` and `llc_mib`).
#[derive(Debug, Clone, Copy)]
pub struct ManycoreScalingStudy;

impl Study for ManycoreScalingStudy {
    fn name(&self) -> &'static str {
        "scaling"
    }

    fn description(&self) -> &'static str {
        "Beyond the paper: speedup stacks from 1 to 128 cores (weak scaling + rate mix)"
    }

    fn run(&self, params: &StudyParams) -> Result<Report, SimError> {
        let (study, degraded) = run_study_ft(params)?;
        let mut report = study.to_report();
        if degraded.is_degraded() {
            report.push(Block::Degraded(degraded));
        }
        params.record(&mut report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::Parallelism;

    #[test]
    fn quick_study_has_expected_shape() {
        let study = run_with(0.02, &[1, 2, 4], Parallelism::Serial);
        assert_eq!(study.counts, vec![1, 2, 4]);
        assert_eq!(study.series.len(), 4); // 3 weak workloads + rate mix
        for s in &study.series {
            assert_eq!(s.points.len(), 3, "{}", s.name);
            for p in &s.points {
                assert!(p.mt_cycles > 0);
                assert!(p.scaled_speedup > 0.0);
                assert_eq!(p.stack.num_threads(), p.cores);
            }
        }
        assert!(study.total_events() > 0);
        assert_eq!(study.total_points(), 12);
        let text = study.to_string();
        assert!(text.contains("rate_mix"));
        assert!(text.contains("_weak"));
    }

    #[test]
    fn weak_scaling_names_marked() {
        let profiles = study_profiles(1.0);
        assert!(profiles.iter().all(|p| p.weak_scaling));
    }

    #[test]
    fn manycore_llc_selects_wide_lru_geometry() {
        let mem = manycore_mem();
        assert_eq!(mem.llc.ways(), 32);
        assert_eq!(mem.llc.lines() * 64, 4 * 1024 * 1024);
    }

    #[test]
    fn serial_equals_parallel_points() {
        let a = run_with(0.02, &[1, 2], Parallelism::Serial);
        let b = run_with(0.02, &[1, 2], Parallelism::Workers(3));
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(sa.name, sb.name);
            for (pa, pb) in sa.points.iter().zip(&sb.points) {
                assert_eq!(pa.mt_cycles, pb.mt_cycles);
                assert_eq!(pa.events, pb.events);
            }
        }
    }
}
