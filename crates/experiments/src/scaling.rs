//! The many-core scaling study: speedup stacks from 1 to 128 cores.
//!
//! The paper evaluates speedup stacks at up to 16 cores; this study
//! drives the same accounting architecture across a 1→128-core sweep to
//! show where each workload's scaling delimiters take over at core
//! counts the paper never reached. Three ingredients make the sweep
//! meaningful beyond 16 threads:
//!
//! - **weak-scaling workloads** ([`workloads::weak_scaling_suite`]):
//!   per-thread work is held at the paper's 16-thread share, so 128
//!   threads have real work instead of a starved strong-scaled input;
//! - a **multi-program rate mix** ([`workloads::rate_mix_streams`]):
//!   independent single-threaded programs contending only through the
//!   shared LLC and DRAM — the pure-interference end of the spectrum;
//! - a **many-core memory system**: a 4 MiB, 32-way LLC, exercising the
//!   wide (byte-ranked) LRU encoding, with the coherence directory in
//!   its spilled multi-word sharer representation above 64 cores.
//!
//! Weak-scaling points report the *scaled speedup* `n · Ts / Tp` (the MT
//! run does `n` times the ST reference work); the rate mix reports the
//! rate speedup `Σᵢ Ts(i) / Tp`. Each point also carries the full
//! speedup stack rendered by [`speedup_stacks::render::render_sweep`].

use std::fmt;

use cmpsim::{simulate, MachineConfig, SimResult};
use memsim::{CacheConfig, MemConfig};
use speedup_stacks::render::{render_sweep, RenderOptions};
use speedup_stacks::{AccountingConfig, SpeedupStack};
use workloads::{
    default_rate_mix, display_name, find, rate_mix_streams, streams_for, RateMixStream, Suite,
    WorkloadProfile,
};

/// The swept core counts: powers of two from 1 to 128 (the paper stops
/// at 16; everything above exercises the many-core representations).
pub const CORE_COUNTS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The study's memory system: the paper's defaults with the LLC grown to
/// 4 MiB × 32 ways — a plausible many-core LLC that selects the wide
/// LRU encoding (`ways > 16`).
#[must_use]
pub fn manycore_mem() -> MemConfig {
    MemConfig {
        llc: CacheConfig::from_kib(4096, 64, 32),
        ..MemConfig::default()
    }
}

/// One swept point of one workload.
#[derive(Debug)]
pub struct ScalingPoint {
    /// Hardware cores (== software threads at this point).
    pub cores: usize,
    /// The speedup stack of the multi-threaded run, with the scaled
    /// speedup attached as the actual.
    pub stack: SpeedupStack,
    /// Estimated speedup `Ŝ` from the stack (Eq. 4).
    pub estimated: f64,
    /// Scaled speedup: `n · Ts / Tp` for weak-scaling workloads (the MT
    /// run does `n×` the reference work), `Σᵢ Ts(i) / Tp` for the rate
    /// mix.
    pub scaled_speedup: f64,
    /// Multi-threaded run duration in cycles.
    pub mt_cycles: u64,
    /// Engine events of the multi-threaded run.
    pub events: u64,
}

/// One workload's 1→128-core series.
#[derive(Debug)]
pub struct ScalingSeries {
    /// Workload display name (`*_weak` variants and `rate_mix`).
    pub name: String,
    /// One point per swept core count, in [`CORE_COUNTS`] order.
    pub points: Vec<ScalingPoint>,
}

/// The whole study.
#[derive(Debug)]
pub struct ScalingStudy {
    /// One series per workload.
    pub series: Vec<ScalingSeries>,
    /// Swept core counts.
    pub counts: Vec<usize>,
}

impl ScalingStudy {
    /// Total engine events across every multi-threaded point (the
    /// perf-trajectory denominator for `BENCH_PR*.json`).
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.series
            .iter()
            .flat_map(|s| s.points.iter())
            .map(|p| p.events)
            .sum()
    }

    /// Number of swept simulation points.
    #[must_use]
    pub fn total_points(&self) -> u64 {
        self.series.iter().map(|s| s.points.len() as u64).sum()
    }
}

impl fmt::Display for ScalingStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Many-core scaling study: speedup stacks at {:?} cores",
            self.counts
        )?;
        writeln!(
            f,
            "(4 MiB 32-way LLC; weak-scaling workloads report scaled speedup n*Ts/Tp,\n\
             the rate mix reports sum(Ts_i)/Tp)"
        )?;
        for series in &self.series {
            writeln!(f)?;
            let bars: Vec<(String, SpeedupStack)> = series
                .points
                .iter()
                .map(|p| (format!("N={:>3}", p.cores), p.stack.clone()))
                .collect();
            write!(
                f,
                "{}",
                render_sweep(&series.name, &bars, &RenderOptions::default())
            )?;
        }
        Ok(())
    }
}

/// The study's weak-scaling workloads: one good scaler (blackscholes),
/// one synchronization-bound workload (cholesky: short hot critical
/// sections) and one imbalance-bound workload (lud: strong rotating
/// skew), each as its weak variant.
#[must_use]
pub fn study_profiles(scale: f64) -> Vec<WorkloadProfile> {
    [
        find("blackscholes", Suite::ParsecMedium).expect("catalog"),
        find("cholesky", Suite::Splash2).expect("catalog"),
        find("lud", Suite::Rodinia).expect("catalog"),
    ]
    .iter()
    .map(|p| crate::runner::scaled_profile(&p.weak_variant(), scale))
    .collect()
}

fn machine(cores: usize) -> MachineConfig {
    MachineConfig {
        n_cores: cores,
        mem: manycore_mem(),
        ..MachineConfig::default()
    }
}

fn stack_of(mt: &SimResult, actual: f64) -> SpeedupStack {
    mt.stack(&AccountingConfig::default())
        .expect("engine produces valid counters")
        .with_actual_speedup(actual)
}

/// Runs one weak-scaling workload across `counts`, reusing the one
/// single-threaded reference (weak scaling: every thread's work equals
/// the ST run's).
fn weak_series(
    profile: &WorkloadProfile,
    counts: &[usize],
    mode: crate::par::Parallelism,
) -> ScalingSeries {
    let st = simulate(machine(1), streams_for(profile, 1)).expect("ST reference");
    let points = crate::par::map_mode(mode, counts.to_vec(), |n| {
        let mt = simulate(machine(n), streams_for(profile, n)).expect("weak-scaling run");
        let scaled = n as f64 * st.tp_cycles as f64 / mt.tp_cycles as f64;
        let stack = stack_of(&mt, scaled);
        ScalingPoint {
            cores: n,
            estimated: stack.estimated_speedup(),
            scaled_speedup: scaled,
            mt_cycles: mt.tp_cycles,
            events: mt.events,
            stack,
        }
    });
    ScalingSeries {
        name: display_name(profile),
        points,
    }
}

/// Runs the rate mix across `counts`. Per-program single-threaded
/// references are computed once from the first `programs.len()` members
/// and reused cyclically across wider mixes.
fn mix_series(
    programs: &[WorkloadProfile],
    counts: &[usize],
    mode: crate::par::Parallelism,
) -> ScalingSeries {
    let refs: Vec<u64> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let solo: Vec<Box<dyn cmpsim::OpStream>> = vec![Box::new(RateMixStream::new(p, i))];
            simulate(machine(1), solo)
                .expect("mix ST reference")
                .tp_cycles
        })
        .collect();
    let points = crate::par::map_mode(mode, counts.to_vec(), |n| {
        let mt = simulate(machine(n), rate_mix_streams(programs, n)).expect("rate mix run");
        let ts_sum: u64 = (0..n).map(|i| refs[i % refs.len()]).sum();
        let rate = ts_sum as f64 / mt.tp_cycles as f64;
        let stack = stack_of(&mt, rate);
        ScalingPoint {
            cores: n,
            estimated: stack.estimated_speedup(),
            scaled_speedup: rate,
            mt_cycles: mt.tp_cycles,
            events: mt.events,
            stack,
        }
    });
    ScalingSeries {
        name: "rate_mix".to_string(),
        points,
    }
}

/// Runs the full study over [`CORE_COUNTS`] with workloads scaled by
/// `scale` (1.0 = the catalog sizes; use e.g. 0.25 for a quick pass).
#[must_use]
pub fn run(scale: f64) -> ScalingStudy {
    run_with(scale, &CORE_COUNTS, crate::par::Parallelism::Auto)
}

/// Runs the study over explicit `counts` with the given sweep
/// parallelism (points are independent; collection order is
/// deterministic).
#[must_use]
pub fn run_with(scale: f64, counts: &[usize], mode: crate::par::Parallelism) -> ScalingStudy {
    let mut series: Vec<ScalingSeries> = study_profiles(scale)
        .iter()
        .map(|p| weak_series(p, counts, mode))
        .collect();
    let mix: Vec<WorkloadProfile> = default_rate_mix()
        .iter()
        .map(|p| crate::runner::scaled_profile(p, scale))
        .collect();
    series.push(mix_series(&mix, counts, mode));
    ScalingStudy {
        series,
        counts: counts.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::Parallelism;

    #[test]
    fn quick_study_has_expected_shape() {
        let study = run_with(0.02, &[1, 2, 4], Parallelism::Serial);
        assert_eq!(study.counts, vec![1, 2, 4]);
        assert_eq!(study.series.len(), 4); // 3 weak workloads + rate mix
        for s in &study.series {
            assert_eq!(s.points.len(), 3, "{}", s.name);
            for p in &s.points {
                assert!(p.mt_cycles > 0);
                assert!(p.scaled_speedup > 0.0);
                assert_eq!(p.stack.num_threads(), p.cores);
            }
        }
        assert!(study.total_events() > 0);
        assert_eq!(study.total_points(), 12);
        let text = study.to_string();
        assert!(text.contains("rate_mix"));
        assert!(text.contains("_weak"));
    }

    #[test]
    fn weak_scaling_names_marked() {
        let profiles = study_profiles(1.0);
        assert!(profiles.iter().all(|p| p.weak_scaling));
    }

    #[test]
    fn manycore_llc_selects_wide_lru_geometry() {
        let mem = manycore_mem();
        assert_eq!(mem.llc.ways(), 32);
        assert_eq!(mem.llc.lines() * 64, 4 * 1024 * 1024);
    }

    #[test]
    fn serial_equals_parallel_points() {
        let a = run_with(0.02, &[1, 2], Parallelism::Serial);
        let b = run_with(0.02, &[1, 2], Parallelism::Workers(3));
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(sa.name, sb.name);
            for (pa, pb) in sa.points.iter().zip(&sb.points) {
                assert_eq!(pa.mt_cycles, pb.mt_cycles);
                assert_eq!(pa.events, pb.events);
            }
        }
    }
}
