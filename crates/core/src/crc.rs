//! CRC-32 checksumming shared by the journal and trace formats.
//!
//! Both persistence layers of the reproduction pipeline — the sweep
//! journal (`experiments::journal`, PR 4) and the binary workload trace
//! (`workloads::trace`) — frame their records with the same checksum so
//! corruption is detected identically everywhere. The implementation is
//! bitwise (no lookup table): framed payloads are small and this keeps it
//! dependency-free and obviously correct.

/// CRC-32 (IEEE 802.3 polynomial, reflected — the `cksum`/zlib variant).
///
/// ```
/// // The canonical check vector.
/// assert_eq!(speedup_stacks::crc::crc32(b"123456789"), 0xCBF4_3926);
/// assert_eq!(speedup_stacks::crc::crc32(b""), 0);
/// ```
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The checksum as the lowercase-hex string the journal format records.
///
/// ```
/// assert_eq!(speedup_stacks::crc::crc32_hex(b"123456789"), "cbf43926");
/// ```
#[must_use]
pub fn crc32_hex(bytes: &[u8]) -> String {
    format!("{:08x}", crc32(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"speedup stacks");
        let b = crc32(b"speedup stackt");
        assert_ne!(a, b);
    }

    #[test]
    fn hex_is_fixed_width_lowercase() {
        assert_eq!(crc32_hex(b"123456789"), "cbf43926");
        for b in 0u8..=255 {
            assert_eq!(crc32_hex(&[b]).len(), 8, "hex must stay zero-padded");
        }
    }
}
