//! Post-processing of raw counters into per-thread cycle components.
//!
//! This is the "system software" half of the paper's accounting
//! architecture (§4.7): the hardware provides raw cycle and event counts
//! ([`ThreadCounters`]); this module applies
//!
//! - **extrapolation** for negative LLC interference (sampled inter-thread
//!   miss stalls × sampling factor, §4.1),
//! - **interpolation** for positive LLC interference (estimated
//!   inter-thread hits × average miss penalty, §4.2),
//! - direct charging for memory interference, spinning and yielding, and
//! - the **imbalance fill** (§4.6): every thread's components are topped up
//!   so they sum to the slowest thread's execution time.

use crate::components::{Breakdown, Component};
use crate::counters::ThreadCounters;
use crate::error::StackError;

/// Configuration for turning raw counters into cycle components.
///
/// # Examples
///
/// ```
/// use speedup_stacks::AccountingConfig;
/// let cfg = AccountingConfig { charge_coherency: true, ..AccountingConfig::default() };
/// assert!(cfg.charge_coherency);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccountingConfig {
    /// Charge coherency-miss cycles as a [`Component::CacheCoherency`]
    /// overhead. The paper's default is `false`: a balanced out-of-order
    /// core hides most L1 misses (§4.5). Enable for in-order-style cores.
    pub charge_coherency: bool,
    /// Clamp each thread's total overhead to `Tp` (scaling components
    /// proportionally) so the estimated single-threaded fraction is never
    /// negative. Extrapolated estimates can otherwise overshoot.
    pub clamp_overheads: bool,
}

impl Default for AccountingConfig {
    fn default() -> Self {
        AccountingConfig {
            charge_coherency: false,
            clamp_overheads: true,
        }
    }
}

/// Per-thread cycle components plus the derived single-thread estimate.
///
/// `estimated_single_thread_cycles` is the paper's `T̂_i` (Eq. 2): the
/// measured per-thread time minus all overhead components plus positive
/// interference.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThreadBreakdown {
    /// Overhead components, in cycles.
    pub overheads: Breakdown,
    /// Positive LLC interference, in cycles.
    pub positive_cycles: f64,
    /// `T̂_i = Tp − Σ_j O_ij + P_i` (Eq. 2).
    pub estimated_single_thread_cycles: f64,
}

impl ThreadBreakdown {
    /// Total overhead cycles across all components.
    #[must_use]
    pub fn total_overhead(&self) -> f64 {
        self.overheads.total()
    }
}

/// Computes per-thread cycle components from raw counters.
///
/// `tp` is the duration of the (parallel section of the) multi-threaded
/// run in cycles; it is identical for all threads in the paper's breakup
/// (Figure 3).
///
/// # Errors
///
/// - [`StackError::NoThreads`] if `threads` is empty.
/// - [`StackError::ZeroDuration`] if `tp == 0`.
/// - [`StackError::InvalidCounters`] if a thread reports negative or
///   non-finite cycles, or finished after `tp`.
///
/// # Examples
///
/// ```
/// use speedup_stacks::{accounting, AccountingConfig, ThreadCounters, Component};
/// let threads = [
///     ThreadCounters { active_end_cycle: 1000, spin_cycles: 100.0,
///                      ..ThreadCounters::default() },
///     ThreadCounters { active_end_cycle: 600, ..ThreadCounters::default() },
/// ];
/// let b = accounting::account(&threads, 1000, &AccountingConfig::default())?;
/// // Thread 1 finished 400 cycles early: imbalance fill.
/// assert_eq!(b[1].overheads[Component::Imbalance], 400.0);
/// # Ok::<(), speedup_stacks::StackError>(())
/// ```
pub fn account(
    threads: &[ThreadCounters],
    tp: u64,
    cfg: &AccountingConfig,
) -> Result<Vec<ThreadBreakdown>, StackError> {
    if threads.is_empty() {
        return Err(StackError::NoThreads);
    }
    if tp == 0 {
        return Err(StackError::ZeroDuration);
    }
    let tp_f = tp as f64;

    let mut out = Vec::with_capacity(threads.len());
    for (i, t) in threads.iter().enumerate() {
        if !t.is_valid() || t.active_end_cycle > tp {
            return Err(StackError::InvalidCounters { thread: i });
        }

        let mut o = Breakdown::zero();
        o[Component::NegativeLlc] = t.negative_llc_cycles();
        o[Component::NegativeMemory] = t.mem_interference_cycles;
        o[Component::Spinning] = t.spin_cycles;
        o[Component::Yielding] = t.yield_cycles;
        o[Component::Imbalance] = tp_f - t.active_end_cycle as f64;
        if cfg.charge_coherency {
            o[Component::CacheCoherency] = t.coherency_miss_cycles;
        }

        if cfg.clamp_overheads {
            let total = o.total();
            if total > tp_f {
                o = o.scaled(tp_f / total);
            }
        }

        let positive = t.positive_interference_cycles();
        let mut est = tp_f - o.total() + positive;
        if cfg.clamp_overheads {
            // Proportional scaling can leave a float epsilon below zero.
            est = est.max(0.0);
        }
        out.push(ThreadBreakdown {
            overheads: o,
            positive_cycles: positive,
            estimated_single_thread_cycles: est,
        });
    }
    Ok(out)
}

/// Aggregates per-thread breakdowns into stack components in *speedup
/// units* (Σ cycles / Tp), the terms of Eq. 4.
///
/// Returns `(overheads, positive)` where `overheads.total()` is the total
/// speedup lost to scaling delimiters and `positive` is the speedup gained
/// from inter-thread hits.
#[must_use]
pub fn aggregate(breakdowns: &[ThreadBreakdown], tp: u64) -> (Breakdown, f64) {
    let tp_f = tp as f64;
    let mut agg = Breakdown::zero();
    let mut pos = 0.0;
    for b in breakdowns {
        agg += b.overheads.scaled(1.0 / tp_f);
        pos += b.positive_cycles / tp_f;
    }
    (agg, pos)
}

/// The paper's software-side parallelization-overhead measure (§6): the
/// relative increase in dynamic instruction count of the multi-threaded
/// run over the single-threaded run, after subtracting spin-loop
/// instructions.
///
/// Returns e.g. `0.26` for "26 % more instructions". Returns `0.0` when
/// the single-threaded instruction count is zero or the multi-threaded
/// count is smaller.
#[must_use]
pub fn instruction_overhead(threads: &[ThreadCounters], single_thread_instructions: u64) -> f64 {
    if single_thread_instructions == 0 {
        return 0.0;
    }
    let mt: f64 = threads
        .iter()
        .map(|t| t.instructions.saturating_sub(t.spin_instructions) as f64)
        .sum();
    let st = single_thread_instructions as f64;
    ((mt - st) / st).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_thread(end: u64) -> ThreadCounters {
        ThreadCounters {
            active_end_cycle: end,
            ..ThreadCounters::default()
        }
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            account(&[], 100, &AccountingConfig::default()),
            Err(StackError::NoThreads)
        );
    }

    #[test]
    fn rejects_zero_tp() {
        assert_eq!(
            account(&[base_thread(0)], 0, &AccountingConfig::default()),
            Err(StackError::ZeroDuration)
        );
    }

    #[test]
    fn rejects_end_after_tp() {
        assert_eq!(
            account(&[base_thread(200)], 100, &AccountingConfig::default()),
            Err(StackError::InvalidCounters { thread: 0 })
        );
    }

    #[test]
    fn imbalance_fill() {
        let threads = [base_thread(1000), base_thread(250)];
        let b = account(&threads, 1000, &AccountingConfig::default()).unwrap();
        assert_eq!(b[0].overheads[Component::Imbalance], 0.0);
        assert_eq!(b[1].overheads[Component::Imbalance], 750.0);
    }

    #[test]
    fn direct_components_pass_through() {
        let t = ThreadCounters {
            active_end_cycle: 1000,
            spin_cycles: 10.0,
            yield_cycles: 20.0,
            mem_interference_cycles: 30.0,
            ..ThreadCounters::default()
        };
        let b = account(&[t], 1000, &AccountingConfig::default()).unwrap();
        assert_eq!(b[0].overheads[Component::Spinning], 10.0);
        assert_eq!(b[0].overheads[Component::Yielding], 20.0);
        assert_eq!(b[0].overheads[Component::NegativeMemory], 30.0);
    }

    #[test]
    fn coherency_charged_only_when_enabled() {
        let t = ThreadCounters {
            active_end_cycle: 1000,
            coherency_miss_cycles: 42.0,
            ..ThreadCounters::default()
        };
        let off = account(&[t], 1000, &AccountingConfig::default()).unwrap();
        assert_eq!(off[0].overheads[Component::CacheCoherency], 0.0);
        let cfg = AccountingConfig {
            charge_coherency: true,
            ..AccountingConfig::default()
        };
        let on = account(&[t], 1000, &cfg).unwrap();
        assert_eq!(on[0].overheads[Component::CacheCoherency], 42.0);
    }

    #[test]
    fn estimated_single_thread_cycles_eq2() {
        let t = ThreadCounters {
            active_end_cycle: 1000,
            spin_cycles: 100.0,
            ..ThreadCounters::default()
        };
        let b = account(&[t], 1000, &AccountingConfig::default()).unwrap();
        // Tp - O + P = 1000 - 100 + 0
        assert_eq!(b[0].estimated_single_thread_cycles, 900.0);
    }

    #[test]
    fn clamping_prevents_negative_estimate() {
        let t = ThreadCounters {
            active_end_cycle: 100,
            spin_cycles: 5000.0, // absurd over-estimate
            ..ThreadCounters::default()
        };
        let b = account(&[t], 1000, &AccountingConfig::default()).unwrap();
        assert!(b[0].estimated_single_thread_cycles >= 0.0);
        assert!(b[0].overheads.total() <= 1000.0 + 1e-9);
    }

    #[test]
    fn aggregate_speedup_units() {
        let threads = [base_thread(1000), base_thread(500)];
        let b = account(&threads, 1000, &AccountingConfig::default()).unwrap();
        let (agg, pos) = aggregate(&b, 1000);
        assert_eq!(agg[Component::Imbalance], 0.5);
        assert_eq!(pos, 0.0);
    }

    #[test]
    fn instruction_overhead_measure() {
        let threads = [
            ThreadCounters {
                instructions: 700,
                spin_instructions: 100,
                ..ThreadCounters::default()
            },
            ThreadCounters {
                instructions: 660,
                spin_instructions: 0,
                ..ThreadCounters::default()
            },
        ];
        // (600 + 660 - 1000) / 1000 = 0.26
        let ovh = instruction_overhead(&threads, 1000);
        assert!((ovh - 0.26).abs() < 1e-12);
        assert_eq!(instruction_overhead(&threads, 0), 0.0);
    }

    #[test]
    fn instruction_overhead_never_negative() {
        let threads = [ThreadCounters {
            instructions: 10,
            ..ThreadCounters::default()
        }];
        assert_eq!(instruction_overhead(&threads, 1000), 0.0);
    }
}
