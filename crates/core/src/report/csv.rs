//! CSV emission for [`Report`].
//!
//! A report becomes a sequence of CSV sections separated by blank
//! lines: a `study` header, one `param` line per run parameter, then one
//! section per data-bearing block (tables, scalars, stacks). Free-text
//! blocks are presentation-only and are skipped. Fields containing
//! commas, quotes or newlines are quoted per RFC 4180; non-finite
//! numbers and missing cells are emitted as empty fields.
//!
//! # Examples
//!
//! ```
//! use speedup_stacks::report::{Block, Report, Scalar, Unit};
//!
//! let mut r = Report::new("demo", "Demo");
//! r.push(Block::Scalar(Scalar::new("err", 3.5, Unit::Percent, "err 3.5%")));
//! let csv = r.to_csv();
//! assert!(csv.starts_with("study,demo\n"));
//! assert!(csv.contains("scalar,err,3.5,percent\n"));
//! ```

use std::fmt::Write as _;

use super::{Block, Report, Table, Value};
use crate::components::Component;
use crate::stack::SpeedupStack;

/// Escapes one CSV field (RFC 4180 quoting).
#[must_use]
pub fn escape(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::new()
    }
}

fn field(v: &Value) -> String {
    match v {
        Value::F64(x) => num(*x),
        Value::U64(x) => format!("{x}"),
        Value::Str(s) => escape(s),
        Value::Missing => String::new(),
    }
}

fn table_section(t: &Table, out: &mut String) {
    let _ = writeln!(out, "table,{}", escape(&t.name));
    let names: Vec<String> = t.columns.iter().map(|c| escape(&c.name)).collect();
    let _ = writeln!(out, "{}", names.join(","));
    for row in &t.rows {
        let cells: Vec<String> = row.iter().map(field).collect();
        let _ = writeln!(out, "{}", cells.join(","));
    }
}

fn stack_header() -> String {
    let mut header = String::from("label,n,tp_cycles,base_speedup,positive_interference");
    for c in Component::ALL {
        header.push(',');
        header.push_str(c.label());
    }
    header.push_str(",estimated_speedup,actual_speedup");
    header
}

fn stack_row(label: &str, s: &SpeedupStack, out: &mut String) {
    let _ = write!(
        out,
        "{},{},{},{},{}",
        escape(label),
        s.num_threads(),
        s.tp_cycles(),
        num(s.base_speedup()),
        num(s.positive_interference())
    );
    for c in Component::ALL {
        let _ = write!(out, ",{}", num(s.component(c)));
    }
    let _ = writeln!(
        out,
        ",{},{}",
        num(s.estimated_speedup()),
        s.actual_speedup().map(num).unwrap_or_default()
    );
}

fn stacks_section(name: &str, stacks: &[(String, SpeedupStack)], out: &mut String) {
    let _ = writeln!(out, "stacks,{}", escape(name));
    let _ = writeln!(out, "{}", stack_header());
    for (label, s) in stacks {
        stack_row(label, s, out);
    }
}

fn block_section(b: &Block, out: &mut String) -> bool {
    match b {
        Block::Text(_) | Block::Blank => return false,
        Block::Table(t) => table_section(t, out),
        Block::Scalar(s) => {
            let _ = writeln!(
                out,
                "scalar,{},{},{}",
                escape(&s.name),
                field(&s.value),
                s.unit.label()
            );
        }
        Block::Stack { label, stack, .. } => {
            stacks_section(
                label,
                std::slice::from_ref(&(label.clone(), stack.clone())),
                out,
            );
        }
        Block::StackTable { name, stacks } => stacks_section(name, stacks, out),
        Block::Sweep { title, series, .. } => stacks_section(title, series, out),
        Block::Hidden(inner) => return block_section(inner, out),
        Block::Degraded(d) => {
            let _ = writeln!(
                out,
                "degraded,total_points,{},completed,{},retried,{},quarantined,{}",
                d.total_points, d.completed, d.retried, d.quarantined
            );
            for p in &d.failed {
                let _ = writeln!(
                    out,
                    "failed,{},{},{}",
                    escape(&p.label),
                    escape(&p.reason),
                    p.attempts
                );
            }
        }
        Block::Provenance(p) => {
            let _ = writeln!(
                out,
                "provenance,trace-capture,{},runs,{},bytes,{}",
                escape(&p.path),
                p.runs,
                p.bytes
            );
        }
    }
    true
}

/// Serializes a report as CSV sections.
#[must_use]
pub fn to_csv(r: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "study,{}", escape(&r.study));
    for (k, v) in &r.params {
        let _ = writeln!(out, "param,{},{}", escape(k), field(v));
    }
    for b in &r.blocks {
        let mut section = String::new();
        if block_section(b, &mut section) {
            out.push('\n');
            out.push_str(&section);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Column, Scalar, Unit};

    #[test]
    fn escaping_quotes_commas_newlines() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn report_sections() {
        let mut r = Report::new("demo", "Demo");
        r.param("scale", 0.5);
        let mut t = Table::new("points", vec![Column::new("name"), Column::new("v")]);
        t.row(vec![Value::str("a,b"), Value::F64(1.25)]);
        t.row(vec![Value::str("c"), Value::Missing]);
        r.push(Block::Table(t));
        r.push(Block::Scalar(Scalar::new("n", 4u64, Unit::Count, "n 4")));
        let csv = r.to_csv();
        assert_eq!(
            csv,
            "study,demo\nparam,scale,0.5\n\ntable,points\nname,v\n\"a,b\",1.25\nc,\n\n\
             scalar,n,4,count\n"
        );
    }

    #[test]
    fn non_finite_fields_empty() {
        assert_eq!(num(f64::NAN), "");
        assert_eq!(field(&Value::F64(f64::INFINITY)), "");
    }
}
