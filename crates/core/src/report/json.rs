//! JSON emission and validation for [`Report`].
//!
//! The build is fully self-contained (no serde offline — the `serde`
//! feature remains a cfg-gated second path), so this module hand-writes
//! the JSON and ships a small recursive-descent parser used by the tests
//! and the `jsoncheck` smoke binary to validate emitted documents.
//!
//! Non-finite numbers (`NaN`, `±inf`) have no JSON representation and
//! are emitted as `null`; [`Value::Missing`]
//! cells likewise become `null`.
//!
//! # Examples
//!
//! ```
//! use speedup_stacks::report::{json, Report};
//!
//! let report = Report::new("demo", "A demo");
//! let doc = json::parse(&report.to_json()).unwrap();
//! assert_eq!(doc.get("title").unwrap().as_str(), Some("A demo"));
//! assert!(doc.get("blocks").unwrap().as_array().unwrap().is_empty());
//! ```

use std::fmt::Write as _;

use super::{Block, Report, Scalar, Table, Value};
use crate::components::Component;
use crate::stack::SpeedupStack;

/// Escapes a string for inclusion in a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number token (`null` when non-finite).
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn value_token(v: &Value) -> String {
    match v {
        Value::F64(x) => number(*x),
        Value::U64(x) => format!("{x}"),
        Value::Str(s) => format!("\"{}\"", escape(s)),
        Value::Missing => "null".to_string(),
    }
}

fn stack_object(label: &str, stack: &SpeedupStack, out: &mut String, indent: &str) {
    let _ = write!(out, "{{\"label\": \"{}\", ", escape(label));
    let _ = write!(
        out,
        "\"n\": {}, \"tp_cycles\": {}, \"base_speedup\": {}, \"positive_interference\": {}, ",
        stack.num_threads(),
        stack.tp_cycles(),
        number(stack.base_speedup()),
        number(stack.positive_interference()),
    );
    let _ = write!(
        out,
        "\"estimated_speedup\": {}, \"actual_speedup\": {},\n{indent}  \"overheads\": {{",
        number(stack.estimated_speedup()),
        stack.actual_speedup().map_or("null".to_string(), number),
    );
    for (i, c) in Component::ALL.iter().enumerate() {
        let comma = if i + 1 < Component::ALL.len() {
            ", "
        } else {
            ""
        };
        let _ = write!(
            out,
            "\"{}\": {}{comma}",
            c.label(),
            number(stack.component(*c))
        );
    }
    out.push_str("}}");
}

fn table_object(t: &Table, out: &mut String, indent: &str) {
    let _ = write!(
        out,
        "{{\"kind\": \"table\", \"name\": \"{}\",",
        escape(&t.name)
    );
    out.push('\n');
    let _ = write!(out, "{indent}  \"columns\": [");
    for (i, c) in t.columns.iter().enumerate() {
        let comma = if i + 1 < t.columns.len() { ", " } else { "" };
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"unit\": \"{}\"}}{comma}",
            escape(&c.name),
            c.unit.label()
        );
    }
    let _ = write!(out, "],\n{indent}  \"rows\": [");
    for (ri, row) in t.rows.iter().enumerate() {
        let comma = if ri + 1 < t.rows.len() { "," } else { "" };
        let _ = write!(out, "\n{indent}    [");
        for (ci, v) in row.iter().enumerate() {
            let vcomma = if ci + 1 < row.len() { ", " } else { "" };
            let _ = write!(out, "{}{vcomma}", value_token(v));
        }
        let _ = write!(out, "]{comma}");
    }
    if t.rows.is_empty() {
        out.push(']');
    } else {
        let _ = write!(out, "\n{indent}  ]");
    }
    out.push('}');
}

fn scalar_object(s: &Scalar, out: &mut String) {
    let _ = write!(
        out,
        "{{\"kind\": \"scalar\", \"name\": \"{}\", \"value\": {}, \"unit\": \"{}\"}}",
        escape(&s.name),
        value_token(&s.value),
        s.unit.label()
    );
}

fn stack_list(stacks: &[(String, SpeedupStack)], out: &mut String, indent: &str) {
    for (i, (label, stack)) in stacks.iter().enumerate() {
        let comma = if i + 1 < stacks.len() { "," } else { "" };
        let _ = write!(out, "\n{indent}    ");
        stack_object(label, stack, out, &format!("{indent}    "));
        out.push_str(comma);
    }
    if stacks.is_empty() {
        out.push(']');
    } else {
        let _ = write!(out, "\n{indent}  ]");
    }
}

fn block_object(b: &Block, out: &mut String, indent: &str) -> bool {
    match b {
        Block::Blank => return false,
        Block::Text(s) => {
            let _ = write!(out, "{{\"kind\": \"text\", \"text\": \"{}\"}}", escape(s));
        }
        Block::Table(t) => table_object(t, out, indent),
        Block::Scalar(s) => scalar_object(s, out),
        Block::Stack { label, stack, .. } => {
            out.push_str("{\"kind\": \"stack\", \"stack\": ");
            stack_object(label, stack, out, indent);
            out.push('}');
        }
        Block::StackTable { name, stacks } => {
            let _ = write!(
                out,
                "{{\"kind\": \"stack_table\", \"name\": \"{}\", \"stacks\": [",
                escape(name)
            );
            stack_list(stacks, out, indent);
            out.push('}');
        }
        Block::Sweep { title, series, .. } => {
            let _ = write!(
                out,
                "{{\"kind\": \"sweep\", \"title\": \"{}\", \"stacks\": [",
                escape(title)
            );
            stack_list(series, out, indent);
            out.push('}');
        }
        Block::Hidden(inner) => return block_object(inner, out, indent),
        Block::Degraded(d) => {
            let _ = write!(
                out,
                "{{\"kind\": \"degraded\", \"total_points\": {}, \"completed\": {}, \
                 \"retried\": {}, \"quarantined\": {},\n{indent}  \"failed\": [",
                d.total_points, d.completed, d.retried, d.quarantined
            );
            for (i, p) in d.failed.iter().enumerate() {
                let comma = if i + 1 < d.failed.len() { "," } else { "" };
                let _ = write!(
                    out,
                    "\n{indent}    {{\"label\": \"{}\", \"reason\": \"{}\", \"attempts\": {}}}{comma}",
                    escape(&p.label),
                    escape(&p.reason),
                    p.attempts
                );
            }
            if d.failed.is_empty() {
                out.push_str("]}");
            } else {
                let _ = write!(out, "\n{indent}  ]}}");
            }
        }
        Block::Provenance(p) => {
            let _ = write!(
                out,
                "{{\"kind\": \"provenance\", \"source\": \"trace-capture\", \
                 \"path\": \"{}\", \"runs\": {}, \"bytes\": {}}}",
                escape(&p.path),
                p.runs,
                p.bytes
            );
        }
    }
    true
}

/// Serializes a report as a pretty-printed JSON object.
#[must_use]
pub fn to_json(r: &Report) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"study\": \"{}\",", escape(&r.study));
    let _ = writeln!(out, "  \"title\": \"{}\",", escape(&r.title));
    out.push_str("  \"params\": {");
    for (i, (k, v)) in r.params.iter().enumerate() {
        let comma = if i + 1 < r.params.len() { ", " } else { "" };
        let _ = write!(out, "\"{}\": {}{comma}", escape(k), value_token(v));
    }
    out.push_str("},\n  \"blocks\": [");
    let mut first = true;
    for b in &r.blocks {
        let mut chunk = String::new();
        if block_object(b, &mut chunk, "    ") {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            out.push_str(&chunk);
        }
    }
    if first {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// A parsed JSON value (the in-repo validator's document model).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// True if the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Strict JSON integer part: "0" or a non-zero digit followed by
        // more digits (no leading zeros).
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return self.err("leading zero");
                }
            }
            Some(b'1'..=b'9') => {
                self.consume_digits();
            }
            _ => return self.err("expected digit"),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.consume_digits() == 0 {
                return self.err("expected digit after '.'");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.consume_digits() == 0 {
                return self.err("expected exponent digit");
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match text.parse::<f64>() {
            Ok(v) => Ok(JsonValue::Number(v)),
            Err(_) => self.err(format!("invalid number '{text}'")),
        }
    }

    fn consume_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: JSON encodes astral chars
                            // as \uD8xx\uDCxx.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return self
                                            .err("high surrogate not followed by low surrogate");
                                    }
                                    char::from_u32(0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00))
                                } else {
                                    None
                                }
                            } else {
                                // Lone (low) surrogates are rejected by
                                // char::from_u32.
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        other => return self.err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                b if b < 0x20 => return self.err("control character in string"),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let rest = &self.bytes[self.pos - 1..];
                    match std::str::from_utf8(&rest[..rest.len().min(4)]) {
                        Ok(s) => {
                            let c = s.chars().next().expect("non-empty");
                            out.push(c);
                            self.pos += c.len_utf8() - 1;
                        }
                        Err(e) if e.valid_up_to() > 0 => {
                            let s = std::str::from_utf8(&rest[..e.valid_up_to()])
                                .expect("validated prefix");
                            let c = s.chars().next().expect("non-empty");
                            out.push(c);
                            self.pos += c.len_utf8() - 1;
                        }
                        Err(_) => return self.err("invalid UTF-8"),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return self.err("truncated \\u escape");
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a' + 10),
                b'A'..=b'F' => u32::from(b - b'A' + 10),
                _ => return self.err("invalid hex digit"),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a JSON document (used to validate emitter output in-repo; no
/// external tools needed).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first syntax
/// error, including trailing garbage after the document.
///
/// # Examples
///
/// ```
/// use speedup_stacks::report::json::parse;
/// let v = parse("{\"a\": [1, 2.5, null]}").unwrap();
/// assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
/// assert!(parse("{\"a\": NaN}").is_err());
/// ```
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after document");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse("{\"a\": {\"b\": [1, -2.5e3, \"x\", true, null]}}").unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(arr[3], JsonValue::Bool(true));
        assert!(arr[4].is_null());
    }

    #[test]
    fn escape_round_trips() {
        let original = "a \"quoted\"\\ line\nwith\ttabs and unicode: Ŝ → 3.87";
        let json = format!("\"{}\"", escape(original));
        let parsed = parse(&json).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
        // Surrogate pair for U+1F600.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn mismatched_surrogates_rejected() {
        // High surrogate followed by a non-surrogate escape.
        assert!(parse("\"\\ud83d\\u0041\"").is_err());
        // High surrogate followed by another high surrogate.
        assert!(parse("\"\\ud83d\\ud83d\"").is_err());
        // Lone surrogates, high and low.
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ude00\"").is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} garbage",
            "\"unterminated",
            "NaN",
            "Infinity",
            "01",
            "1.",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
        assert_eq!(number(1.5), "1.5");
    }

    #[test]
    fn report_with_non_finite_cells_still_emits_valid_json() {
        use crate::report::Column;
        let mut r = Report::new("nan", "non-finite handling");
        let mut t = Table::new("t", vec![Column::new("v"), Column::new("w")]);
        t.row(vec![Value::F64(f64::NAN), Value::F64(f64::INFINITY)]);
        t.row(vec![Value::F64(f64::NEG_INFINITY), Value::Missing]);
        r.push(Block::Table(t));
        r.push(Block::Scalar(Scalar::new(
            "bad",
            f64::NAN,
            crate::report::Unit::Speedup,
            String::new(),
        )));
        let doc = parse(&r.to_json()).expect("NaN/inf must not break the document");
        let blocks = doc.get("blocks").unwrap().as_array().unwrap();
        let rows = blocks[0].get("rows").unwrap().as_array().unwrap();
        for row in rows {
            for cell in row.as_array().unwrap() {
                assert!(cell.is_null());
            }
        }
        assert!(blocks[1].get("value").unwrap().is_null());
    }

    #[test]
    fn float_values_round_trip_exactly() {
        // The emitter uses shortest round-trip formatting, so a parse
        // recovers bit-identical values.
        for v in [0.1, 1.0 / 3.0, 5.618_213_4e-17, 1e300, -2.5] {
            let parsed = parse(&number(v)).unwrap();
            assert_eq!(parsed.as_f64(), Some(v));
        }
    }
}
