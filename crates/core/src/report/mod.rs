//! Structured experiment reports: the shared value model every study
//! produces and every driver consumes.
//!
//! A [`Report`] is a sequence of typed [`Block`]s — tables with typed
//! cells ([`Table`]), scalar metrics with units ([`Scalar`]), speedup
//! stacks and stack sweeps — plus the study's name, title and the
//! parameters it ran with. The same value is rendered by three emitters:
//!
//! - [`Report::to_text`] — the exact figure text the paper-reproduction
//!   studies have always printed (the legacy `Display` impls are now
//!   implemented *on top of* this emitter, pinned bit-identical by the
//!   golden tests in `experiments`);
//! - [`Report::to_json`] — machine-readable JSON ([`json`]), with an
//!   in-repo parser for validation (no external dependencies);
//! - [`Report::to_csv`] — flat CSV sections ([`csv`]) for spreadsheet
//!   import.
//!
//! Presentation details (column widths, separators, pre-padded header
//! chunks) live in [`Column`] so the text emitter can reproduce each
//! figure's historical layout exactly, while the JSON and CSV emitters
//! see only the machine names and typed values.
//!
//! # Examples
//!
//! ```
//! use speedup_stacks::report::{Align, Block, Column, Report, Table, Unit, Value};
//!
//! let mut report = Report::new("demo", "A demo report");
//! report.param("scale", Value::F64(1.0));
//! report.push(Block::line("Demo: one table"));
//! let mut t = Table::new(
//!     "speedups",
//!     vec![
//!         Column::new("benchmark").text_header("{:<10}").left(10),
//!         Column::new("speedup").text_header(" {:>8}").prefix(" ").width(8).precision(2),
//!     ],
//! );
//! t.row(vec![Value::str("fft"), Value::F64(7.25)]);
//! report.push(Block::Table(t));
//!
//! let text = report.to_text();
//! assert!(text.contains("fft            7.25"));
//! let parsed = speedup_stacks::report::json::parse(&report.to_json()).unwrap();
//! assert_eq!(parsed.get("study").unwrap().as_str(), Some("demo"));
//! ```

pub mod csv;
pub mod json;

use crate::render::{self, RenderOptions};
use crate::stack::SpeedupStack;

/// The unit of a scalar metric or table column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Unit {
    /// Speedup units (fractions of the ideal speedup `N`).
    Speedup,
    /// Clock cycles.
    Cycles,
    /// A percentage (the value is already scaled to 0–100).
    Percent,
    /// Bytes of storage.
    Bytes,
    /// Wall-clock seconds (perf reports).
    Seconds,
    /// A plain count (threads, cores, events, regions …).
    Count,
    /// A dimensionless ratio or anything without a meaningful unit.
    #[default]
    Dimensionless,
}

impl Unit {
    /// Stable machine label used by the JSON and CSV emitters.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Unit::Speedup => "speedup",
            Unit::Cycles => "cycles",
            Unit::Percent => "percent",
            Unit::Bytes => "bytes",
            Unit::Seconds => "seconds",
            Unit::Count => "count",
            Unit::Dimensionless => "",
        }
    }
}

/// One typed cell value.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// A floating-point number.
    F64(f64),
    /// An unsigned integer (cycle counts, event counts, thread counts).
    U64(u64),
    /// A string (benchmark names, labels, classes).
    Str(String),
    /// A missing value (rendered `-` in text, `null` in JSON, empty in
    /// CSV).
    Missing,
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// The value as an `f64`, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            #[allow(clippy::cast_precision_loss)]
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Horizontal alignment of a text-rendered cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers) — the default.
    #[default]
    Right,
}

/// One table column: a machine name plus the text-layout metadata that
/// lets the text emitter reproduce the historical figure output exactly.
///
/// The text emitter renders each cell as `prefix` + the value padded to
/// `width` with `align` (floats formatted with `precision` decimals) +
/// `suffix`; the header line is the concatenation of the columns'
/// pre-padded `header` chunks. The JSON and CSV emitters use only
/// `name`, `unit` and the typed cell values.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Column {
    /// Machine name (JSON object key / CSV header).
    pub name: String,
    /// Exact pre-padded header chunk for the text header line.
    pub header: String,
    /// Text printed before each cell (column separator).
    pub prefix: String,
    /// Cell padding width in characters (0 = no padding).
    pub width: usize,
    /// Cell alignment within `width`.
    pub align: Align,
    /// Decimal places for [`Value::F64`] cells (`None` = shortest form).
    pub precision: Option<usize>,
    /// Text printed after each cell.
    pub suffix: String,
    /// Unit of the column's values.
    pub unit: Unit,
}

impl Column {
    /// A right-aligned column with no padding and the header equal to
    /// `name`; refine with the builder methods.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        Column {
            header: name.clone(),
            name,
            prefix: String::new(),
            width: 0,
            align: Align::Right,
            precision: None,
            suffix: String::new(),
            unit: Unit::Dimensionless,
        }
    }

    /// Sets the exact header chunk.
    #[must_use]
    pub fn header(mut self, header: impl Into<String>) -> Self {
        self.header = header.into();
        self
    }

    /// Sets the header chunk to the column name formatted with a
    /// `format!`-like pad spec: `"{:<10}"`, `"{:>7}"`, or with literal
    /// decoration such as `" {:>3}t  "` (the `{…}` part is replaced by
    /// the padded name).
    ///
    /// # Panics
    ///
    /// Panics if `spec` contains no `{:<N}` / `{:>N}` placeholder.
    #[must_use]
    pub fn text_header(self, spec: &str) -> Self {
        let open = spec.find("{:").expect("pad placeholder");
        let close = spec[open..].find('}').expect("closing brace") + open;
        let pad = &spec[open + 2..close];
        let (left, w) = match pad.as_bytes().first() {
            Some(b'<') => (true, pad[1..].parse::<usize>().expect("width")),
            Some(b'>') => (false, pad[1..].parse::<usize>().expect("width")),
            _ => (false, pad.parse::<usize>().expect("width")),
        };
        let padded = if left {
            format!("{:<w$}", self.name, w = w)
        } else {
            format!("{:>w$}", self.name, w = w)
        };
        let header = format!("{}{}{}", &spec[..open], padded, &spec[close + 1..]);
        self.header(header)
    }

    /// Sets the cell prefix (separator before the cell).
    #[must_use]
    pub fn prefix(mut self, prefix: impl Into<String>) -> Self {
        self.prefix = prefix.into();
        self
    }

    /// Sets the cell suffix.
    #[must_use]
    pub fn suffix(mut self, suffix: impl Into<String>) -> Self {
        self.suffix = suffix.into();
        self
    }

    /// Sets the cell padding width.
    #[must_use]
    pub fn width(mut self, width: usize) -> Self {
        self.width = width;
        self
    }

    /// Left-aligns cells and sets the padding width.
    #[must_use]
    pub fn left(mut self, width: usize) -> Self {
        self.align = Align::Left;
        self.width = width;
        self
    }

    /// Sets the decimal places for float cells.
    #[must_use]
    pub fn precision(mut self, precision: usize) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Sets the column unit.
    #[must_use]
    pub fn unit(mut self, unit: Unit) -> Self {
        self.unit = unit;
        self
    }

    /// Formats one cell (without prefix/suffix) per the column layout.
    #[must_use]
    pub fn format_cell(&self, value: &Value) -> String {
        let s = match value {
            Value::F64(v) => match self.precision {
                Some(p) => format!("{v:.p$}"),
                None => format!("{v}"),
            },
            Value::U64(v) => format!("{v}"),
            Value::Str(v) => v.clone(),
            Value::Missing => "-".to_string(),
        };
        match self.align {
            Align::Left => format!("{s:<w$}", w = self.width),
            Align::Right => format!("{s:>w$}", w = self.width),
        }
    }
}

/// A table of typed cells.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table {
    /// Machine name of the table.
    pub name: String,
    /// Whether the text emitter prints the header line.
    pub show_header: bool,
    /// Column specifications.
    pub columns: Vec<Column>,
    /// Rows; each row has exactly one [`Value`] per column.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// An empty table with the given columns.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Table {
            name: name.into(),
            show_header: true,
            columns,
            rows: Vec::new(),
        }
    }

    /// Hides the header line in text output (JSON/CSV still carry the
    /// column names).
    #[must_use]
    pub fn headerless(mut self) -> Self {
        self.show_header = false;
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the column count.
    pub fn row(&mut self, cells: Vec<Value>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push(cells);
    }

    fn render_text(&self, out: &mut String) {
        if self.show_header {
            for c in &self.columns {
                out.push_str(&c.header);
            }
            out.push('\n');
        }
        for row in &self.rows {
            for (c, v) in self.columns.iter().zip(row) {
                out.push_str(&c.prefix);
                out.push_str(&c.format_cell(v));
                out.push_str(&c.suffix);
            }
            out.push('\n');
        }
    }
}

/// A named scalar metric with a unit and its exact text rendering.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scalar {
    /// Machine name.
    pub name: String,
    /// The typed value.
    pub value: Value,
    /// Unit of the value.
    pub unit: Unit,
    /// The exact text line (without trailing newline) the text emitter
    /// prints for this metric.
    pub text: String,
}

impl Scalar {
    /// Builds a scalar metric.
    pub fn new(
        name: impl Into<String>,
        value: impl Into<Value>,
        unit: Unit,
        text: impl Into<String>,
    ) -> Self {
        Scalar {
            name: name.into(),
            value: value.into(),
            unit,
            text: text.into(),
        }
    }
}

/// One point that ultimately failed in a degraded run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DegradedPoint {
    /// Human-readable point label (e.g. `"cholesky 16t"`).
    pub label: String,
    /// Why the point failed (panic payload, deadline overrun, engine
    /// error).
    pub reason: String,
    /// Attempts made before giving up (1 = no retry).
    pub attempts: u32,
}

/// Summary of a fault-tolerant sweep that did not complete cleanly:
/// counts of failed, retried and quarantined points plus the per-failure
/// reasons. Rendered by all three emitters so degradation is never
/// silent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Degraded {
    /// Total points in the sweep grid.
    pub total_points: usize,
    /// Points that produced a result.
    pub completed: usize,
    /// Points that succeeded only after at least one retry.
    pub retried: usize,
    /// Journal records that failed their checksum or parse and were
    /// recomputed on resume.
    pub quarantined: usize,
    /// Points that failed every attempt (missing from the report body).
    pub failed: Vec<DegradedPoint>,
}

impl Degraded {
    /// Whether anything actually degraded: a clean run's summary is all
    /// zeros and is not worth a block (keeps resumed output bit-identical
    /// to uninterrupted runs).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.failed.is_empty() || self.retried > 0 || self.quarantined > 0
    }

    fn render_text(&self, out: &mut String) {
        out.push_str(&format!(
            "degraded run: {}/{} points completed ({} failed, {} retried, {} quarantined)\n",
            self.completed,
            self.total_points,
            self.failed.len(),
            self.retried,
            self.quarantined
        ));
        for p in &self.failed {
            out.push_str(&format!(
                "  FAILED {}: {} [{} attempt{}]\n",
                p.label,
                p.reason,
                p.attempts,
                if p.attempts == 1 { "" } else { "s" }
            ));
        }
    }
}

/// Where a report's workload streams were captured to: the provenance
/// record a trace-capturing run attaches to its report, naming the trace
/// artifact so downstream tooling can pair the report with its replayable
/// source.
///
/// Replayed runs deliberately attach **no** provenance block: a replay
/// must be byte-identical to the generated original in every emitter.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Provenance {
    /// Path of the captured trace file.
    pub path: String,
    /// Number of captured runs (benchmark × thread-count stream sets).
    pub runs: usize,
    /// Size of the trace file in bytes.
    pub bytes: u64,
}

impl Provenance {
    fn render_text(&self, out: &mut String) {
        out.push_str(&format!(
            "trace captured: {} ({} runs, {} bytes)\n",
            self.path, self.runs, self.bytes
        ));
    }
}

/// One block of a report.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Block {
    /// Free text, rendered verbatim by the text emitter (include your own
    /// trailing newline, or build with [`Block::line`]).
    Text(String),
    /// One empty line.
    Blank,
    /// A table of typed cells.
    Table(Table),
    /// A scalar metric.
    Scalar(Scalar),
    /// One speedup stack, text-rendered as a bar + legend
    /// ([`render::render_stack`]).
    Stack {
        /// Bar label.
        label: String,
        /// The stack.
        stack: SpeedupStack,
        /// Bar rendering options.
        options: RenderOptions,
    },
    /// Several stacks as an aligned comparison table
    /// ([`render::render_table`]).
    StackTable {
        /// Machine name of the group.
        name: String,
        /// `(label, stack)` rows.
        stacks: Vec<(String, SpeedupStack)>,
    },
    /// A core-count sweep of stacks drawn as a growth chart
    /// ([`render::render_sweep`]).
    Sweep {
        /// Sweep title.
        title: String,
        /// `(label, stack)` series.
        series: Vec<(String, SpeedupStack)>,
        /// Bar rendering options.
        options: RenderOptions,
    },
    /// A machine-only block: skipped by the text emitter, emitted by
    /// JSON/CSV. Used to attach structured data to studies whose text
    /// form is non-tabular (e.g. the Figure 6 classification tree).
    Hidden(Box<Block>),
    /// A degraded-run summary (failed/retried/quarantined points).
    /// Studies push it only when [`Degraded::is_degraded`] holds.
    Degraded(Degraded),
    /// The trace-capture provenance record (see [`Provenance`]). Pushed
    /// only by capture-mode runs, never by replays.
    Provenance(Provenance),
}

impl Block {
    /// A text block of one line (appends the newline).
    pub fn line(s: impl Into<String>) -> Self {
        let mut s = s.into();
        s.push('\n');
        Block::Text(s)
    }

    /// A verbatim text block (no newline appended).
    pub fn raw(s: impl Into<String>) -> Self {
        Block::Text(s.into())
    }

    /// Wraps a block as machine-only (invisible in text output).
    #[must_use]
    pub fn hidden(block: Block) -> Self {
        Block::Hidden(Box::new(block))
    }

    fn render_text(&self, out: &mut String) {
        match self {
            Block::Text(s) => out.push_str(s),
            Block::Blank => out.push('\n'),
            Block::Table(t) => t.render_text(out),
            Block::Scalar(s) => {
                out.push_str(&s.text);
                out.push('\n');
            }
            Block::Stack {
                label,
                stack,
                options,
            } => out.push_str(&render::render_stack(label, stack, options)),
            Block::StackTable { stacks, .. } => out.push_str(&render::render_table(stacks)),
            Block::Sweep {
                title,
                series,
                options,
            } => out.push_str(&render::render_sweep(title, series, options)),
            Block::Hidden(_) => {}
            Block::Degraded(d) => d.render_text(out),
            Block::Provenance(p) => p.render_text(out),
        }
    }
}

/// A structured experiment report: study identity, run parameters and a
/// sequence of typed blocks.
///
/// # Examples
///
/// ```
/// use speedup_stacks::report::{Block, Report, Scalar, Unit, Value};
///
/// let mut r = Report::new("hwcost", "Hardware cost (§4.7)");
/// r.push(Block::Scalar(Scalar::new(
///     "total_bytes", 1169u64, Unit::Bytes, "total per core 1169 B",
/// )));
/// assert_eq!(r.to_text(), "total per core 1169 B\n");
/// assert!(r.to_json().contains("\"total_bytes\""));
/// assert!(r.to_csv().starts_with("study,hwcost\n"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Report {
    /// Machine name of the study (registry key, e.g. `fig4`).
    pub study: String,
    /// Human-readable title.
    pub title: String,
    /// Parameters the study ran with (echoed into JSON/CSV).
    pub params: Vec<(String, Value)>,
    /// The report body.
    pub blocks: Vec<Block>,
}

impl Report {
    /// An empty report.
    pub fn new(study: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            study: study.into(),
            title: title.into(),
            params: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// Records one run parameter.
    pub fn param(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.params.push((name.into(), value.into()));
    }

    /// Appends one block.
    pub fn push(&mut self, block: Block) {
        self.blocks.push(block);
    }

    /// Renders the report as the historical figure text.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for b in &self.blocks {
            b.render_text(&mut out);
        }
        out
    }

    /// Renders the report as JSON (see [`json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        json::to_json(self)
    }

    /// Renders the report as CSV sections (see [`csv`]).
    #[must_use]
    pub fn to_csv(&self) -> String {
        csv::to_csv(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::AccountingConfig;
    use crate::counters::ThreadCounters;

    fn demo_stack() -> SpeedupStack {
        let threads = vec![
            ThreadCounters {
                active_end_cycle: 1000,
                spin_cycles: 250.0,
                ..ThreadCounters::default()
            },
            ThreadCounters {
                active_end_cycle: 1000,
                ..ThreadCounters::default()
            },
        ];
        SpeedupStack::from_counters(&threads, 1000, &AccountingConfig::default()).unwrap()
    }

    #[test]
    fn table_text_matches_manual_format() {
        let mut t = Table::new(
            "demo",
            vec![
                Column::new("benchmark").text_header("{:<22}").left(22),
                Column::new("N").text_header(" {:>3}").prefix(" ").width(3),
                Column::new("actual")
                    .text_header("  {:>8}")
                    .prefix("  ")
                    .width(8)
                    .precision(2)
                    .unit(Unit::Speedup),
            ],
        );
        t.row(vec![Value::str("cholesky"), 16usize.into(), 5.618.into()]);
        let mut out = String::new();
        t.render_text(&mut out);
        let expect = format!(
            "{:<22} {:>3}  {:>8}\n{:<22} {:>3}  {:>8.2}\n",
            "benchmark", "N", "actual", "cholesky", 16, 5.618
        );
        assert_eq!(out, expect);
    }

    #[test]
    fn text_header_decorated() {
        let c = Column::new("16t").text_header(" {:>4}  ");
        assert_eq!(c.header, "  16t  ");
        let c = Column::new("x").text_header("{:<5}");
        assert_eq!(c.header, "x    ");
    }

    #[test]
    fn missing_renders_dash_aligned() {
        let c = Column::new("v").width(5);
        assert_eq!(c.format_cell(&Value::Missing), "    -");
    }

    #[test]
    fn hidden_blocks_invisible_in_text() {
        let mut r = Report::new("x", "x");
        r.push(Block::line("visible"));
        r.push(Block::hidden(Block::line("machine-only")));
        assert_eq!(r.to_text(), "visible\n");
        assert!(r.to_json().contains("machine-only"));
    }

    #[test]
    fn stack_blocks_delegate_to_render() {
        let stack = demo_stack();
        let opts = RenderOptions::default();
        let mut r = Report::new("x", "x");
        r.push(Block::Stack {
            label: "demo".into(),
            stack: stack.clone(),
            options: opts,
        });
        assert_eq!(r.to_text(), render::render_stack("demo", &stack, &opts));
    }

    #[test]
    fn provenance_block_renders_in_every_emitter() {
        let mut r = Report::new("x", "x");
        r.push(Block::Provenance(Provenance {
            path: "/tmp/fig6.sstrace".to_string(),
            runs: 56,
            bytes: 12345,
        }));
        assert_eq!(
            r.to_text(),
            "trace captured: /tmp/fig6.sstrace (56 runs, 12345 bytes)\n"
        );
        let doc = crate::report::json::parse(&r.to_json()).unwrap();
        let b = &doc.get("blocks").unwrap().as_array().unwrap()[0];
        assert_eq!(b.get("kind").unwrap().as_str(), Some("provenance"));
        assert_eq!(b.get("runs").unwrap().as_f64(), Some(56.0));
        assert!(r
            .to_csv()
            .contains("provenance,trace-capture,/tmp/fig6.sstrace,runs,56,bytes,12345"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", vec![Column::new("a"), Column::new("b")]);
        t.row(vec![Value::Missing]);
    }
}
