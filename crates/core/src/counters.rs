//! Raw per-thread event counts produced by the cycle accounting
//! architecture.
//!
//! The paper's hardware (§4.7) exposes *raw cycle and event counts*; system
//! software then post-processes them into speedup-stack components
//! (extrapolation for sampled negative interference, interpolation for
//! positive interference). [`ThreadCounters`] is that raw interface: it is
//! what a profiler — hardware, the `cmpsim` simulator, or anything else —
//! must produce per thread for [`crate::accounting`] to do the rest.

/// Raw accounting counters for one thread of a multi-threaded run.
///
/// All cycle quantities are *exposed* cycles: the portion of a miss or wait
/// that actually stalled the core (the accounting architecture only charges
/// interference when a miss blocks the ROB head, §4.1).
///
/// # Examples
///
/// ```
/// use speedup_stacks::ThreadCounters;
/// let c = ThreadCounters {
///     active_end_cycle: 10_000,
///     spin_cycles: 1_500.0,
///     ..ThreadCounters::default()
/// };
/// assert_eq!(c.spin_cycles, 1_500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThreadCounters {
    /// Cycle at which this thread finished its share of the parallel
    /// section. The slowest thread defines `Tp`; the gap to `Tp` for the
    /// other threads becomes the imbalance component (§4.6).
    pub active_end_cycle: u64,
    /// Cycles spent in detected spin loops (Tian et al. load-table
    /// detector, §4.3).
    pub spin_cycles: f64,
    /// Cycles this thread was scheduled out while waiting on a barrier or
    /// contended lock (§4.4), including run-queue wait after wakeup.
    pub yield_cycles: f64,
    /// Exposed cycles waiting for the memory bus, a memory bank, or an
    /// open-page conflict caused by another core (§4.1).
    pub mem_interference_cycles: f64,
    /// Exposed stall cycles of *sampled* inter-thread LLC misses (misses in
    /// the shared LLC that hit in this core's ATD). Extrapolated by the
    /// sampling factor during accounting.
    pub sampled_interthread_miss_stall_cycles: f64,
    /// Number of sampled inter-thread LLC misses.
    pub sampled_interthread_misses: u64,
    /// Number of sampled inter-thread LLC hits (hits in the shared LLC that
    /// miss in this core's ATD, §4.2).
    pub sampled_interthread_hits: u64,
    /// Number of LLC accesses that fell into ATD-sampled sets.
    pub sampled_llc_accesses: u64,
    /// Total number of LLC accesses by this thread.
    pub llc_accesses: u64,
    /// Total number of LLC load misses by this thread.
    pub llc_load_misses: u64,
    /// Total exposed cycles the core was stalled on LLC load misses. Used
    /// for the positive-interference interpolation (average miss penalty =
    /// stall cycles / misses).
    pub llc_load_miss_stall_cycles: f64,
    /// Exposed cycles attributable to coherency misses (L1 misses on lines
    /// previously invalidated by another core). Counted but not charged by
    /// default (§4.5).
    pub coherency_miss_cycles: f64,
    /// Dynamic instruction count (used for the software-side
    /// parallelization-overhead measure, §6).
    pub instructions: u64,
    /// Dynamic instructions executed inside detected spin loops (subtracted
    /// from the instruction-overhead measure, §6).
    pub spin_instructions: u64,
}

impl ThreadCounters {
    /// The per-thread ATD sampling factor: total LLC accesses divided by
    /// sampled LLC accesses (§4.1). Returns 1.0 when nothing was sampled,
    /// so unsampled runs degrade gracefully to "no interference observed".
    ///
    /// ```
    /// use speedup_stacks::ThreadCounters;
    /// let c = ThreadCounters { llc_accesses: 800, sampled_llc_accesses: 100,
    ///                          ..ThreadCounters::default() };
    /// assert_eq!(c.sampling_factor(), 8.0);
    /// ```
    #[must_use]
    pub fn sampling_factor(&self) -> f64 {
        if self.sampled_llc_accesses == 0 {
            1.0
        } else {
            self.llc_accesses as f64 / self.sampled_llc_accesses as f64
        }
    }

    /// Average exposed penalty of an LLC load miss, the interpolation basis
    /// for positive interference (§4.2). Zero when the thread had no LLC
    /// load misses (then there is no basis to price an avoided miss).
    #[must_use]
    pub fn average_miss_penalty(&self) -> f64 {
        if self.llc_load_misses == 0 {
            0.0
        } else {
            self.llc_load_miss_stall_cycles / self.llc_load_misses as f64
        }
    }

    /// Estimated total number of inter-thread hits (sampled count scaled by
    /// the sampling factor).
    #[must_use]
    pub fn estimated_interthread_hits(&self) -> f64 {
        self.sampled_interthread_hits as f64 * self.sampling_factor()
    }

    /// Estimated total positive-interference cycles: estimated inter-thread
    /// hits priced at the average miss penalty (§4.2).
    #[must_use]
    pub fn positive_interference_cycles(&self) -> f64 {
        self.estimated_interthread_hits() * self.average_miss_penalty()
    }

    /// Estimated total negative LLC interference cycles: sampled
    /// inter-thread miss stalls extrapolated by the sampling factor (§4.1).
    #[must_use]
    pub fn negative_llc_cycles(&self) -> f64 {
        self.sampled_interthread_miss_stall_cycles * self.sampling_factor()
    }

    /// Returns `true` if all cycle quantities are finite and non-negative.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        [
            self.spin_cycles,
            self.yield_cycles,
            self.mem_interference_cycles,
            self.sampled_interthread_miss_stall_cycles,
            self.llc_load_miss_stall_cycles,
            self.coherency_miss_cycles,
        ]
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_factor_defaults_to_one() {
        let c = ThreadCounters::default();
        assert_eq!(c.sampling_factor(), 1.0);
    }

    #[test]
    fn sampling_factor_ratio() {
        let c = ThreadCounters {
            llc_accesses: 1000,
            sampled_llc_accesses: 125,
            ..ThreadCounters::default()
        };
        assert_eq!(c.sampling_factor(), 8.0);
    }

    #[test]
    fn average_miss_penalty_zero_without_misses() {
        let c = ThreadCounters {
            llc_load_miss_stall_cycles: 500.0,
            ..ThreadCounters::default()
        };
        assert_eq!(c.average_miss_penalty(), 0.0);
    }

    #[test]
    fn positive_interference_interpolation() {
        // 4 sampled hits at sampling factor 8 => 32 estimated hits;
        // average penalty 200 cycles => 6400 cycles of positive interference.
        let c = ThreadCounters {
            llc_accesses: 800,
            sampled_llc_accesses: 100,
            sampled_interthread_hits: 4,
            llc_load_misses: 10,
            llc_load_miss_stall_cycles: 2000.0,
            ..ThreadCounters::default()
        };
        assert_eq!(c.positive_interference_cycles(), 32.0 * 200.0);
    }

    #[test]
    fn negative_llc_extrapolation() {
        let c = ThreadCounters {
            llc_accesses: 400,
            sampled_llc_accesses: 100,
            sampled_interthread_miss_stall_cycles: 300.0,
            ..ThreadCounters::default()
        };
        assert_eq!(c.negative_llc_cycles(), 1200.0);
    }

    #[test]
    fn validity() {
        let mut c = ThreadCounters::default();
        assert!(c.is_valid());
        c.spin_cycles = -1.0;
        assert!(!c.is_valid());
    }
}
