//! The paper's speedup formulas (Eqs. 1–6) and validation helpers.

/// Actual speedup (Eq. 1): single-threaded time over multi-threaded time.
///
/// # Panics
///
/// Panics if `tp_cycles` is zero.
///
/// ```
/// assert_eq!(speedup_stacks::estimate::actual_speedup(8000, 1000), 8.0);
/// ```
#[must_use]
pub fn actual_speedup(ts_cycles: u64, tp_cycles: u64) -> f64 {
    assert!(
        tp_cycles > 0,
        "multi-threaded execution time must be non-zero"
    );
    ts_cycles as f64 / tp_cycles as f64
}

/// Estimated speedup (Eq. 3): estimated single-threaded time over measured
/// multi-threaded time.
///
/// # Panics
///
/// Panics if `tp_cycles` is zero.
#[must_use]
pub fn estimated_speedup(estimated_ts_cycles: f64, tp_cycles: u64) -> f64 {
    assert!(
        tp_cycles > 0,
        "multi-threaded execution time must be non-zero"
    );
    estimated_ts_cycles / tp_cycles as f64
}

/// Validation error (Eq. 6): `(Ŝ − S) / N`.
///
/// Positive error means over-estimation (expected when parallelization
/// overhead is not accounted, §6).
///
/// ```
/// let e = speedup_stacks::estimate::speedup_error(5.5, 5.0, 16);
/// assert!((e - 0.03125).abs() < 1e-12);
/// ```
#[must_use]
pub fn speedup_error(estimated: f64, actual: f64, n: usize) -> f64 {
    (estimated - actual) / n as f64
}

/// One benchmark's validation data point (a bar pair in Figure 4).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ValidationPoint {
    /// Benchmark name (with input size suffix where applicable).
    pub name: String,
    /// Thread/core count of the run.
    pub threads: usize,
    /// Actual speedup `S` (Eq. 1).
    pub actual: f64,
    /// Estimated speedup `Ŝ` (Eq. 3).
    pub estimated: f64,
}

impl ValidationPoint {
    /// Signed error (Eq. 6).
    #[must_use]
    pub fn error(&self) -> f64 {
        speedup_error(self.estimated, self.actual, self.threads)
    }

    /// Absolute error `|Ŝ − S| / N`.
    #[must_use]
    pub fn abs_error(&self) -> f64 {
        self.error().abs()
    }
}

/// Average absolute error over a set of validation points (the paper's
/// headline accuracy metric: 3.0 / 3.4 / 2.8 / 5.1 % for 2/4/8/16 threads).
///
/// Returns 0.0 for an empty slice.
#[must_use]
pub fn average_absolute_error(points: &[ValidationPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().map(ValidationPoint::abs_error).sum::<f64>() / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actual_speedup_eq1() {
        assert_eq!(actual_speedup(1600, 400), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn actual_speedup_zero_tp() {
        let _ = actual_speedup(100, 0);
    }

    #[test]
    fn estimated_speedup_eq3() {
        assert_eq!(estimated_speedup(1500.0, 500), 3.0);
    }

    #[test]
    fn error_eq6_signed() {
        assert_eq!(speedup_error(6.0, 5.0, 4), 0.25);
        assert_eq!(speedup_error(4.0, 5.0, 4), -0.25);
    }

    #[test]
    fn validation_point_errors() {
        let p = ValidationPoint {
            name: "cholesky".into(),
            threads: 16,
            actual: 5.02,
            estimated: 5.82,
        };
        assert!((p.error() - 0.05).abs() < 1e-12);
        assert!((p.abs_error() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn average_absolute_error_mean() {
        let mk = |a: f64, e: f64| ValidationPoint {
            name: "x".into(),
            threads: 2,
            actual: a,
            estimated: e,
        };
        let pts = [mk(1.0, 1.2), mk(1.0, 0.8)];
        // each abs error = 0.1
        assert!((average_absolute_error(&pts) - 0.1).abs() < 1e-12);
        assert_eq!(average_absolute_error(&[]), 0.0);
    }
}
