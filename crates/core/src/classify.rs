//! Benchmark classification by scaling behaviour (Figure 6).
//!
//! The paper classifies benchmarks three ways, each a bifurcation in a
//! tree: scaling class (good / moderate / poor, by achieved speedup), then
//! the first, second and third largest stack components (omitting
//! negligible ones).

use crate::components::Component;
use crate::stack::SpeedupStack;
use std::fmt::Write as _;

/// Scaling class of a benchmark at a given thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ScalingClass {
    /// Speedup of at least the "good" threshold (10× for 16 threads).
    Good,
    /// Between the poor and good thresholds.
    Moderate,
    /// Below the "poor" threshold (5× for 16 threads).
    Poor,
}

impl std::fmt::Display for ScalingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScalingClass::Good => "good",
            ScalingClass::Moderate => "moderate",
            ScalingClass::Poor => "poor",
        })
    }
}

/// Thresholds and cutoffs for classification.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassificationConfig {
    /// Speedup at or above which scaling is "good" (paper: 10× at 16
    /// threads).
    pub good_threshold: f64,
    /// Speedup below which scaling is "poor" (paper: 5× at 16 threads).
    pub poor_threshold: f64,
    /// Components below this fraction of `N` are considered negligible and
    /// do not appear among the top components.
    pub negligible_fraction: f64,
    /// How many top components to report (paper: 3).
    pub top_k: usize,
}

impl Default for ClassificationConfig {
    fn default() -> Self {
        ClassificationConfig {
            good_threshold: 10.0,
            poor_threshold: 5.0,
            negligible_fraction: 0.03,
            top_k: 3,
        }
    }
}

impl ClassificationConfig {
    /// Classifies a speedup value.
    #[must_use]
    pub fn class_of(&self, speedup: f64) -> ScalingClass {
        if speedup >= self.good_threshold {
            ScalingClass::Good
        } else if speedup < self.poor_threshold {
            ScalingClass::Poor
        } else {
            ScalingClass::Moderate
        }
    }
}

/// One benchmark's classification entry (a leaf row of Figure 6).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassifiedBenchmark {
    /// Benchmark name (with input size suffix where applicable).
    pub name: String,
    /// Suite the benchmark belongs to (e.g. "splash2", "parsec_small").
    pub suite: String,
    /// Achieved speedup used for classification.
    pub speedup: f64,
    /// Scaling class.
    pub class: ScalingClass,
    /// Largest → smaller non-negligible components, at most `top_k`.
    pub top_components: Vec<Component>,
}

impl ClassifiedBenchmark {
    /// Classifies one benchmark from its speedup stack, using the actual
    /// speedup when attached and the estimated speedup otherwise.
    #[must_use]
    pub fn from_stack(
        name: impl Into<String>,
        suite: impl Into<String>,
        stack: &SpeedupStack,
        cfg: &ClassificationConfig,
    ) -> Self {
        let speedup = stack
            .actual_speedup()
            .unwrap_or_else(|| stack.estimated_speedup());
        let cutoff = cfg.negligible_fraction * stack.num_threads() as f64;
        let top_components = stack
            .overheads()
            .ranked()
            .into_iter()
            .filter(|&(_, v)| v >= cutoff)
            .take(cfg.top_k)
            .map(|(c, _)| c)
            .collect();
        ClassifiedBenchmark {
            name: name.into(),
            suite: suite.into(),
            speedup,
            class: cfg.class_of(speedup),
            top_components,
        }
    }

    /// The `i`-th largest component label, or `""` when negligible.
    #[must_use]
    pub fn component_label(&self, i: usize) -> &'static str {
        self.top_components.get(i).map_or("", |c| c.label())
    }
}

/// The full classification tree (Figure 6): benchmarks grouped by scaling
/// class and ordered by their top components.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClassificationTree {
    entries: Vec<ClassifiedBenchmark>,
}

impl ClassificationTree {
    /// Builds the tree. Entries are sorted by class (good → moderate →
    /// poor), then by component path, then by descending speedup, which
    /// reproduces the figure's right-to-left readability.
    #[must_use]
    pub fn build(mut entries: Vec<ClassifiedBenchmark>) -> Self {
        entries.sort_by(|a, b| {
            a.class
                .cmp(&b.class)
                .then_with(|| {
                    let pa: Vec<&str> = (0..3).map(|i| a.component_label(i)).collect();
                    let pb: Vec<&str> = (0..3).map(|i| b.component_label(i)).collect();
                    pa.cmp(&pb)
                })
                .then_with(|| {
                    b.speedup
                        .partial_cmp(&a.speedup)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        });
        ClassificationTree { entries }
    }

    /// All entries in tree order.
    #[must_use]
    pub fn entries(&self) -> &[ClassifiedBenchmark] {
        &self.entries
    }

    /// Benchmarks in a given class, in tree order.
    pub fn in_class(&self, class: ScalingClass) -> impl Iterator<Item = &ClassifiedBenchmark> {
        self.entries.iter().filter(move |e| e.class == class)
    }

    /// Count of benchmarks whose *largest* component is `c`.
    #[must_use]
    pub fn count_largest(&self, c: Component) -> usize {
        self.entries
            .iter()
            .filter(|e| e.top_components.first() == Some(&c))
            .count()
    }

    /// Count of benchmarks with no non-negligible component at all.
    #[must_use]
    pub fn count_unlimited(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.top_components.is_empty())
            .count()
    }

    /// Renders the tree as a Figure 6-style table: scaling class, top-3
    /// components, benchmark, suite, speedup. Repeated values in the left
    /// columns are blanked like in the figure.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<9} {:<10} {:<10} {:<10} {:<22} {:<14} {:>7}",
            "scaling", "1st comp", "2nd comp", "3rd comp", "benchmark", "suite", "speedup"
        );
        let mut prev: Option<(ScalingClass, [&str; 3])> = None;
        for e in &self.entries {
            let path = [
                e.component_label(0),
                e.component_label(1),
                e.component_label(2),
            ];
            let (show_class, show) = match prev {
                Some((pc, pp)) => {
                    let show_class = pc != e.class;
                    let show = [
                        show_class || pp[0] != path[0],
                        show_class || pp[0] != path[0] || pp[1] != path[1],
                        show_class || pp[0] != path[0] || pp[1] != path[1] || pp[2] != path[2],
                    ];
                    (show_class, show)
                }
                None => (true, [true, true, true]),
            };
            let _ = writeln!(
                out,
                "{:<9} {:<10} {:<10} {:<10} {:<22} {:<14} {:>7.2}",
                if show_class {
                    e.class.to_string()
                } else {
                    String::new()
                },
                if show[0] { path[0] } else { "" },
                if show[1] { path[1] } else { "" },
                if show[2] { path[2] } else { "" },
                e.name,
                e.suite,
                e.speedup
            );
            prev = Some((e.class, path));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::AccountingConfig;
    use crate::counters::ThreadCounters;

    fn stack_with(spin: f64, yield_c: f64, n: usize, tp: u64) -> SpeedupStack {
        let threads: Vec<ThreadCounters> = (0..n)
            .map(|_| ThreadCounters {
                active_end_cycle: tp,
                spin_cycles: spin,
                yield_cycles: yield_c,
                ..ThreadCounters::default()
            })
            .collect();
        SpeedupStack::from_counters(&threads, tp, &AccountingConfig::default()).unwrap()
    }

    #[test]
    fn class_thresholds() {
        let cfg = ClassificationConfig::default();
        assert_eq!(cfg.class_of(15.9), ScalingClass::Good);
        assert_eq!(cfg.class_of(10.0), ScalingClass::Good);
        assert_eq!(cfg.class_of(9.99), ScalingClass::Moderate);
        assert_eq!(cfg.class_of(5.0), ScalingClass::Moderate);
        assert_eq!(cfg.class_of(4.99), ScalingClass::Poor);
    }

    #[test]
    fn top_components_ranked_and_cutoff() {
        // 16 threads, tp 1000: spin 100/thread => 1.6 units; yield 50 => 0.8.
        let s = stack_with(100.0, 50.0, 16, 1000);
        let cfg = ClassificationConfig::default();
        let c = ClassifiedBenchmark::from_stack("x", "s", &s, &cfg);
        assert_eq!(
            c.top_components,
            vec![Component::Spinning, Component::Yielding]
        );
        // cutoff 3% of 16 = 0.48 units: raise yield cutoff above it
        let cfg = ClassificationConfig {
            negligible_fraction: 0.06,
            ..cfg
        };
        let c = ClassifiedBenchmark::from_stack("x", "s", &s, &cfg);
        assert_eq!(c.top_components, vec![Component::Spinning]);
    }

    #[test]
    fn uses_actual_speedup_when_available() {
        let s = stack_with(0.0, 0.0, 16, 1000).with_actual_speedup(4.0);
        let c = ClassifiedBenchmark::from_stack("x", "s", &s, &ClassificationConfig::default());
        assert_eq!(c.class, ScalingClass::Poor);
        assert_eq!(c.speedup, 4.0);
    }

    #[test]
    fn tree_sorted_by_class_then_speedup() {
        let cfg = ClassificationConfig::default();
        let mk = |name: &str, sp: f64| {
            let s = stack_with(0.0, 0.0, 16, 1000).with_actual_speedup(sp);
            ClassifiedBenchmark::from_stack(name, "s", &s, &cfg)
        };
        let tree =
            ClassificationTree::build(vec![mk("poor", 3.0), mk("good", 15.0), mk("mod", 7.0)]);
        let names: Vec<&str> = tree.entries().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["good", "mod", "poor"]);
    }

    #[test]
    fn counts() {
        let cfg = ClassificationConfig::default();
        let spin_heavy =
            ClassifiedBenchmark::from_stack("a", "s", &stack_with(200.0, 0.0, 16, 1000), &cfg);
        let clean =
            ClassifiedBenchmark::from_stack("b", "s", &stack_with(0.0, 0.0, 16, 1000), &cfg);
        let tree = ClassificationTree::build(vec![spin_heavy, clean]);
        assert_eq!(tree.count_largest(Component::Spinning), 1);
        assert_eq!(tree.count_unlimited(), 1);
        assert_eq!(tree.in_class(ScalingClass::Good).count(), 2);
    }

    #[test]
    fn render_blanks_repeats() {
        let cfg = ClassificationConfig::default();
        let mk = |name: &str| {
            ClassifiedBenchmark::from_stack(name, "suite", &stack_with(200.0, 0.0, 16, 1000), &cfg)
        };
        let tree = ClassificationTree::build(vec![mk("a"), mk("b")]);
        let rendered = tree.render();
        // "spinning" appears once as a column value (second row blanked) —
        // header contains "1st comp", not the word spinning.
        let count = rendered.matches("spinning").count();
        assert_eq!(count, 1, "rendered:\n{rendered}");
    }
}
