//! The crate-spanning error taxonomy.
//!
//! Every failure mode of the reproduction pipeline is classified into one
//! of the [`SimError`] variants, each with a distinct process exit code
//! (used by the `repro` CLI):
//!
//! | variant                  | meaning                                   | exit code |
//! |--------------------------|-------------------------------------------|-----------|
//! | [`SimError::Config`]     | invalid machine/workload configuration    | 3         |
//! | [`SimError::Stack`]      | counters cannot form a speedup stack      | 4         |
//! | [`SimError::Journal`]    | sweep journal unreadable or inconsistent  | 5         |
//! | [`SimError::Point`]      | a grid point failed (panic/deadline)      | 6         |
//! | [`SimError::Engine`]     | the simulation engine aborted a run       | 7         |
//! | [`SimError::Interrupted`]| sweep checkpointed before completion      | 8         |
//! | [`SimError::Trace`]      | workload trace unreadable or inconsistent | 9         |
//! | [`SimError::Protocol`]   | study-service wire protocol / socket I/O  | 10        |
//! | [`SimError::Federation`] | multi-backend fleet unusable              | 11        |
//!
//! The leaf types ([`ConfigError`], [`StackError`], [`JournalError`],
//! [`PointError`], [`TraceError`], [`ProtocolError`],
//! [`FederationError`]) are owned by the layers that raise them and
//! convert into [`SimError`] via `From`, so callers can `?` across
//! layers.

use core::fmt;
use core::time::Duration;

/// Error returned when a speedup stack cannot be built from the provided
/// counters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StackError {
    /// No per-thread counters were provided.
    NoThreads,
    /// The parallel-section duration `Tp` was zero.
    ZeroDuration,
    /// A thread reported a cycle quantity that is negative or not finite,
    /// or an `active_end_cycle` beyond `Tp`.
    InvalidCounters {
        /// Index of the offending thread.
        thread: usize,
    },
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::NoThreads => f.write_str("no per-thread counters provided"),
            StackError::ZeroDuration => f.write_str("parallel-section duration Tp is zero"),
            StackError::InvalidCounters { thread } => {
                write!(f, "thread {thread} reported invalid counters")
            }
        }
    }
}

impl std::error::Error for StackError {}

/// An invalid machine or workload configuration value, caught by
/// `validate()` before a simulation starts (replacing scattered
/// `assert!`s on the hot paths).
///
/// # Examples
///
/// ```
/// use speedup_stacks::error::ConfigError;
/// let e = ConfigError::zero("n_cores");
/// assert_eq!(e.to_string(), "invalid configuration: n_cores must be at least 1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A count that must be at least one was zero.
    ZeroCount {
        /// Name of the offending parameter.
        what: &'static str,
    },
    /// A numeric parameter was non-finite or outside its valid range.
    OutOfRange {
        /// Name of the offending parameter.
        what: &'static str,
        /// The constraint that was violated.
        why: &'static str,
    },
}

impl ConfigError {
    /// Shorthand for [`ConfigError::ZeroCount`].
    #[must_use]
    pub const fn zero(what: &'static str) -> Self {
        ConfigError::ZeroCount { what }
    }

    /// Shorthand for [`ConfigError::OutOfRange`].
    #[must_use]
    pub const fn range(what: &'static str, why: &'static str) -> Self {
        ConfigError::OutOfRange { what, why }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroCount { what } => {
                write!(f, "invalid configuration: {what} must be at least 1")
            }
            ConfigError::OutOfRange { what, why } => {
                write!(f, "invalid configuration: {what} {why}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A sweep journal that cannot be used: unreadable, missing or corrupt
/// header, wrong format version, or recorded under different study
/// parameters.
///
/// Corrupt *records* are not a [`JournalError`]: they are quarantined and
/// their points recomputed (see `experiments::journal`). Only a journal
/// whose identity cannot be established is fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JournalError {
    /// An I/O operation on the journal file failed.
    Io {
        /// The operation that failed (`open`, `read`, `append` …).
        op: &'static str,
        /// The underlying error message.
        message: String,
    },
    /// The journal has no header line.
    MissingHeader,
    /// The header line is present but malformed or fails its checksum.
    BadHeader {
        /// What was wrong with it.
        why: String,
    },
    /// The journal was written by an unsupported format version.
    VersionMismatch {
        /// Version found in the header.
        found: u64,
        /// Version this build supports.
        supported: u64,
    },
    /// The journal belongs to a different study.
    StudyMismatch {
        /// Study recorded in the journal header.
        journal: String,
        /// Study requested on the command line.
        requested: String,
    },
    /// The journal was recorded under different study parameters.
    ParamsMismatch {
        /// Parameter fingerprint recorded in the journal header.
        journal: String,
        /// Fingerprint of the requested parameters.
        requested: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, message } => write!(f, "journal {op} failed: {message}"),
            JournalError::MissingHeader => f.write_str("journal has no header line"),
            JournalError::BadHeader { why } => write!(f, "journal header invalid: {why}"),
            JournalError::VersionMismatch { found, supported } => write!(
                f,
                "journal format version {found} unsupported (this build reads version {supported})"
            ),
            JournalError::StudyMismatch { journal, requested } => write!(
                f,
                "journal records study '{journal}' but '{requested}' was requested"
            ),
            JournalError::ParamsMismatch { journal, requested } => write!(
                f,
                "journal was recorded with different parameters \
                 (fingerprint {journal}, requested {requested})"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// A binary workload trace that cannot be used: unreadable, malformed or
/// truncated framing, a corrupt record, an unsupported format version,
/// or a capture from a different study/parameterization.
///
/// Unlike journal records (which are quarantined and recomputed), *any*
/// trace damage is fatal: a replay must be bit-identical to its captured
/// original, so there is nothing safe to recompute from a damaged trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An I/O operation on the trace file failed.
    Io {
        /// The operation that failed (`create`, `open`, `read`, `write` …).
        op: &'static str,
        /// The underlying error message.
        message: String,
    },
    /// The trace header is missing, malformed or fails its checksum.
    BadHeader {
        /// What was wrong with it.
        why: String,
    },
    /// The trace was captured by an unsupported format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// The file ends before a declared frame or section does (the
    /// artifact of a kill or a partial copy).
    Truncated {
        /// Which structure the file ends inside of.
        what: String,
    },
    /// A framed record fails its checksum or decodes to garbage.
    Corrupt {
        /// Which record, and how it is damaged.
        what: String,
    },
    /// The trace was captured for a different study.
    StudyMismatch {
        /// Study recorded in the trace header.
        trace: String,
        /// Study requested for the replay.
        requested: String,
    },
    /// The trace was captured under different study parameters.
    ParamsMismatch {
        /// Parameter fingerprint recorded in the trace header.
        trace: String,
        /// Fingerprint of the requested parameters.
        requested: String,
    },
    /// The trace has no captured run for the requested benchmark and
    /// thread count.
    MissingRun {
        /// Display name of the requested benchmark.
        name: String,
        /// Requested thread count.
        threads: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { op, message } => write!(f, "trace {op} failed: {message}"),
            TraceError::BadHeader { why } => write!(f, "trace header invalid: {why}"),
            TraceError::VersionMismatch { found, supported } => write!(
                f,
                "trace format version {found} unsupported (this build reads version {supported})"
            ),
            TraceError::Truncated { what } => write!(f, "trace truncated inside {what}"),
            TraceError::Corrupt { what } => write!(f, "trace corrupt: {what}"),
            TraceError::StudyMismatch { trace, requested } => write!(
                f,
                "trace records study '{trace}' but '{requested}' was requested"
            ),
            TraceError::ParamsMismatch { trace, requested } => write!(
                f,
                "trace was captured with different parameters \
                 (fingerprint {trace}, requested {requested})"
            ),
            TraceError::MissingRun { name, threads } => {
                write!(f, "trace has no run for '{name}' at {threads} thread(s)")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// A failure of the `studyd` wire protocol (line-delimited JSON over
/// TCP): socket I/O, malformed or oversized frames, a handshake version
/// mismatch, a typed rejection from the peer, or a connection that
/// closed mid-stream.
///
/// Raised by both sides: the server replies with a typed error frame
/// (and keeps or closes the connection depending on severity), the
/// client surfaces whatever stopped a submission from completing. There
/// is no `unwrap` on socket I/O anywhere in the service layer — every
/// failure funnels into this type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A socket operation failed.
    Io {
        /// The operation that failed (`connect`, `read`, `write` …).
        op: &'static str,
        /// The underlying error message.
        message: String,
    },
    /// A frame was not a well-formed single-line JSON object of the
    /// expected shape.
    Malformed {
        /// What was wrong with it.
        why: String,
    },
    /// A frame exceeded the line-length cap (a defense against
    /// accidental binary input and memory exhaustion).
    Oversized {
        /// The cap in bytes.
        limit: usize,
    },
    /// The peer speaks a different protocol version (`hello` handshake).
    VersionMismatch {
        /// Version the peer announced.
        found: u64,
        /// Version this build speaks.
        supported: u64,
    },
    /// The peer rejected the request with a typed error frame.
    Rejected {
        /// The machine-readable error code from the frame.
        code: String,
        /// The human-readable message from the frame.
        message: String,
    },
    /// The connection closed before the exchange completed.
    Closed {
        /// What was still outstanding (e.g. `"hello reply"`,
        /// `"job 3 stream"`).
        during: String,
    },
    /// The server's admission control refused the submission: its work
    /// queue is full. Carries the server's backoff hint so a resilient
    /// client can retry without guessing.
    Busy {
        /// How long the server suggests waiting before retrying, in
        /// milliseconds (derived deterministically from queue depth).
        retry_after_ms: u64,
    },
    /// A socket read or write hit its configured timeout — on the
    /// server, the idle-connection reaper closing a session that sat
    /// silent past `--idle-timeout-ms`.
    Timeout,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io { op, message } => write!(f, "socket {op} failed: {message}"),
            ProtocolError::Malformed { why } => write!(f, "malformed protocol frame: {why}"),
            ProtocolError::Oversized { limit } => {
                write!(f, "protocol frame exceeds the {limit}-byte line cap")
            }
            ProtocolError::VersionMismatch { found, supported } => write!(
                f,
                "protocol version {found} unsupported (this build speaks version {supported})"
            ),
            ProtocolError::Rejected { code, message } => {
                write!(f, "request rejected ({code}): {message}")
            }
            ProtocolError::Closed { during } => {
                write!(f, "connection closed during {during}")
            }
            ProtocolError::Busy { retry_after_ms } => write!(
                f,
                "server busy: work queue full (retry after {retry_after_ms} ms)"
            ),
            ProtocolError::Timeout => f.write_str("socket timed out waiting for the peer"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A multi-backend studyd fleet that cannot serve a federated sweep at
/// all.
///
/// Individual backend deaths are *not* a [`FederationError`]: the
/// coordinator fails their units over to survivors (or falls back to
/// local in-process execution) and the sweep completes. Only a fleet
/// that cannot be formed or used in the first place is fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FederationError {
    /// A fleet was requested with no backend addresses.
    NoBackends,
    /// Every backend is marked dead and local fallback is disabled, so
    /// no work can be placed anywhere.
    AllBackendsDead {
        /// Number of backends in the fleet, all dead.
        backends: usize,
    },
    /// A fleet option could not be parsed.
    BadOption {
        /// Name of the offending option.
        what: &'static str,
        /// What was wrong with it.
        why: String,
    },
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::NoBackends => f.write_str("federated fleet has no backend addresses"),
            FederationError::AllBackendsDead { backends } => write!(
                f,
                "all {backends} fleet backend(s) are dead and local fallback is disabled"
            ),
            FederationError::BadOption { what, why } => {
                write!(f, "invalid fleet option {what}: {why}")
            }
        }
    }
}

impl std::error::Error for FederationError {}

/// One failed grid point: the point's identity plus the captured failure
/// payload (panic message, engine error or deadline overrun).
///
/// A [`PointError`] never aborts a fault-tolerant sweep — the point is
/// reported in the report's `Degraded` block and the rest of the grid
/// completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointError {
    /// Index of the point in the sweep's deterministic point order.
    pub index: usize,
    /// Human-readable point label (e.g. `"cholesky 16t"`).
    pub label: String,
    /// The captured failure payload.
    pub payload: String,
    /// Wall-clock time spent on the point across all attempts.
    pub elapsed: Duration,
    /// Number of attempts made (1 = no retry).
    pub attempts: u32,
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "point {} ({}) failed after {} attempt{}: {}",
            self.index,
            self.label,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.payload
        )
    }
}

impl std::error::Error for PointError {}

/// The unified error type of the reproduction pipeline.
///
/// # Examples
///
/// ```
/// use speedup_stacks::error::{ConfigError, SimError};
/// let e = SimError::from(ConfigError::zero("n_cores"));
/// assert_eq!(e.exit_code(), 3);
/// assert!(e.to_string().contains("n_cores"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Invalid machine or workload configuration.
    Config(ConfigError),
    /// Counters cannot form a speedup stack.
    Stack(StackError),
    /// The sweep journal is unusable.
    Journal(JournalError),
    /// A grid point failed.
    Point(PointError),
    /// The simulation engine aborted a run (cycle limit, deadlock,
    /// protocol violation — carried as its rendered description so the
    /// engine crate, which sits below this one, needs no type here).
    Engine {
        /// The engine error's description.
        what: String,
    },
    /// A journaled sweep stopped at a checkpoint before completing (point
    /// budget exhausted); resume with the journal to finish.
    Interrupted {
        /// Points recorded in the journal so far.
        completed: usize,
    },
    /// The workload trace is unusable (capture failed, or a replay source
    /// is damaged or from a different study/parameterization).
    Trace(TraceError),
    /// The study-service wire protocol failed (socket I/O, malformed or
    /// oversized frame, handshake mismatch, typed peer rejection, or a
    /// mid-stream disconnect).
    Protocol(ProtocolError),
    /// A multi-backend studyd fleet is unusable (no backends, or every
    /// backend dead with local fallback disabled).
    Federation(FederationError),
}

impl SimError {
    /// The distinct process exit code for this variant (the `repro` CLI
    /// maps usage errors to 1 and success to 0; these start at 3).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            SimError::Config(_) => 3,
            SimError::Stack(_) => 4,
            SimError::Journal(_) => 5,
            SimError::Point(_) => 6,
            SimError::Engine { .. } => 7,
            SimError::Interrupted { .. } => 8,
            SimError::Trace(_) => 9,
            SimError::Protocol(_) => 10,
            SimError::Federation(_) => 11,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => e.fmt(f),
            SimError::Stack(e) => e.fmt(f),
            SimError::Journal(e) => e.fmt(f),
            SimError::Point(e) => e.fmt(f),
            SimError::Engine { what } => write!(f, "engine error: {what}"),
            SimError::Interrupted { completed } => write!(
                f,
                "sweep interrupted at checkpoint ({completed} points journaled); \
                 rerun with --resume to finish"
            ),
            SimError::Trace(e) => e.fmt(f),
            SimError::Protocol(e) => e.fmt(f),
            SimError::Federation(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<StackError> for SimError {
    fn from(e: StackError) -> Self {
        SimError::Stack(e)
    }
}

impl From<JournalError> for SimError {
    fn from(e: JournalError) -> Self {
        SimError::Journal(e)
    }
}

impl From<PointError> for SimError {
    fn from(e: PointError) -> Self {
        SimError::Point(e)
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

impl From<ProtocolError> for SimError {
    fn from(e: ProtocolError) -> Self {
        SimError::Protocol(e)
    }
}

impl From<FederationError> for SimError {
    fn from(e: FederationError) -> Self {
        SimError::Federation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StackError::NoThreads.to_string(),
            "no per-thread counters provided"
        );
        assert_eq!(
            StackError::InvalidCounters { thread: 3 }.to_string(),
            "thread 3 reported invalid counters"
        );
        assert_eq!(
            ConfigError::range("scale", "must be positive and finite").to_string(),
            "invalid configuration: scale must be positive and finite"
        );
        assert!(JournalError::VersionMismatch {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
    }

    #[test]
    fn point_error_display_counts_attempts() {
        let e = PointError {
            index: 4,
            label: "cholesky 16t".to_string(),
            payload: "injected panic".to_string(),
            elapsed: Duration::from_millis(12),
            attempts: 3,
        };
        assert_eq!(
            e.to_string(),
            "point 4 (cholesky 16t) failed after 3 attempts: injected panic"
        );
    }

    #[test]
    fn exit_codes_distinct() {
        let errors: Vec<SimError> = vec![
            ConfigError::zero("x").into(),
            StackError::NoThreads.into(),
            JournalError::MissingHeader.into(),
            PointError {
                index: 0,
                label: String::new(),
                payload: String::new(),
                elapsed: Duration::ZERO,
                attempts: 1,
            }
            .into(),
            SimError::Engine {
                what: "deadlock".to_string(),
            },
            SimError::Interrupted { completed: 7 },
            TraceError::BadHeader {
                why: "bad magic".to_string(),
            }
            .into(),
            ProtocolError::Closed {
                during: "submit".to_string(),
            }
            .into(),
            FederationError::AllBackendsDead { backends: 2 }.into(),
        ];
        let mut codes: Vec<u8> = errors.iter().map(SimError::exit_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "exit codes must be distinct");
        assert!(codes.iter().all(|&c| c >= 3), "0-2 reserved for ok/usage");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StackError>();
        assert_send_sync::<ConfigError>();
        assert_send_sync::<JournalError>();
        assert_send_sync::<PointError>();
        assert_send_sync::<TraceError>();
        assert_send_sync::<FederationError>();
        assert_send_sync::<SimError>();
    }

    #[test]
    fn trace_error_messages_distinct_per_corruption_class() {
        // The adversarial corruption suite relies on each rejection class
        // carrying its own message: a truncation must never read like a
        // bit-flip or a parameter mismatch.
        let messages = [
            TraceError::Truncated {
                what: "run 'x' section 0".to_string(),
            }
            .to_string(),
            TraceError::Corrupt {
                what: "chunk checksum mismatch".to_string(),
            }
            .to_string(),
            TraceError::VersionMismatch {
                found: 99,
                supported: 1,
            }
            .to_string(),
            TraceError::ParamsMismatch {
                trace: "deadbeef".to_string(),
                requested: "cafebabe".to_string(),
            }
            .to_string(),
            TraceError::StudyMismatch {
                trace: "fig6".to_string(),
                requested: "fig1".to_string(),
            }
            .to_string(),
            TraceError::MissingRun {
                name: "cholesky".to_string(),
                threads: 4,
            }
            .to_string(),
        ];
        let mut dedup = messages.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            messages.len(),
            "messages collide: {messages:?}"
        );
        assert!(messages[0].contains("truncated"));
        assert!(messages[1].contains("corrupt"));
        assert!(messages[2].contains("version 99"));
        assert!(messages[3].contains("different parameters"));
    }
}
