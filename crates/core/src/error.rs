//! Error types for speedup-stack construction.

use core::fmt;

/// Error returned when a speedup stack cannot be built from the provided
/// counters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StackError {
    /// No per-thread counters were provided.
    NoThreads,
    /// The parallel-section duration `Tp` was zero.
    ZeroDuration,
    /// A thread reported a cycle quantity that is negative or not finite,
    /// or an `active_end_cycle` beyond `Tp`.
    InvalidCounters {
        /// Index of the offending thread.
        thread: usize,
    },
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::NoThreads => f.write_str("no per-thread counters provided"),
            StackError::ZeroDuration => f.write_str("parallel-section duration Tp is zero"),
            StackError::InvalidCounters { thread } => {
                write!(f, "thread {thread} reported invalid counters")
            }
        }
    }
}

impl std::error::Error for StackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StackError::NoThreads.to_string(),
            "no per-thread counters provided"
        );
        assert_eq!(
            StackError::InvalidCounters { thread: 3 }.to_string(),
            "thread 3 reported invalid counters"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StackError>();
    }
}
