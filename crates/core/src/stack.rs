//! The [`SpeedupStack`] type: the paper's central representation.
//!
//! A stack has height `N` (threads/cores) and decomposes as (Eq. 4):
//!
//! ```text
//! Ŝ = N − Σ_i Σ_j O_ij / Tp + Σ_i P_i / Tp
//!     └──────── base ──────┘  └─ positive ─┘
//! ```
//!
//! The *base speedup* is `N` minus all overhead components; the *estimated
//! speedup* is the base plus positive interference. All components are in
//! speedup units, so everything always sums to exactly `N`.

use crate::accounting::{self, AccountingConfig, ThreadBreakdown};
use crate::components::{Breakdown, Component};
use crate::counters::ThreadCounters;
use crate::error::StackError;

/// A speedup stack for one multi-threaded run.
///
/// Construct with [`SpeedupStack::from_counters`] (raw profiler output) or
/// [`SpeedupStack::from_breakdowns`] (already-accounted components).
///
/// # Examples
///
/// ```
/// use speedup_stacks::{SpeedupStack, ThreadCounters, AccountingConfig, Component};
/// let threads = vec![
///     ThreadCounters { active_end_cycle: 1000, spin_cycles: 200.0,
///                      ..ThreadCounters::default() },
///     ThreadCounters { active_end_cycle: 1000, ..ThreadCounters::default() },
/// ];
/// let stack = SpeedupStack::from_counters(&threads, 1000, &AccountingConfig::default())?;
/// assert_eq!(stack.num_threads(), 2);
/// assert_eq!(stack.component(Component::Spinning), 0.2);
/// assert!((stack.estimated_speedup() - 1.8).abs() < 1e-12);
/// # Ok::<(), speedup_stacks::StackError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpeedupStack {
    n: usize,
    tp_cycles: u64,
    overheads: Breakdown,
    positive: f64,
    actual: Option<f64>,
    per_thread: Vec<ThreadBreakdown>,
}

impl SpeedupStack {
    /// Builds a stack from raw per-thread counters of a single
    /// multi-threaded run of duration `tp` cycles.
    ///
    /// # Errors
    ///
    /// Propagates [`StackError`] from [`accounting::account`]: empty input,
    /// zero `tp`, or invalid per-thread counters.
    pub fn from_counters(
        threads: &[ThreadCounters],
        tp: u64,
        cfg: &AccountingConfig,
    ) -> Result<Self, StackError> {
        let per_thread = accounting::account(threads, tp, cfg)?;
        Ok(Self::from_breakdowns(per_thread, tp))
    }

    /// Builds a stack from already-accounted per-thread breakdowns.
    ///
    /// `N` is taken as the number of breakdowns.
    #[must_use]
    pub fn from_breakdowns(per_thread: Vec<ThreadBreakdown>, tp: u64) -> Self {
        let (overheads, positive) = accounting::aggregate(&per_thread, tp);
        SpeedupStack {
            n: per_thread.len(),
            tp_cycles: tp,
            overheads,
            positive,
            actual: None,
            per_thread,
        }
    }

    /// Attaches the *actual* speedup measured from a separate
    /// single-threaded run (`S = Ts / Tp`, Eq. 1), enabling validation.
    #[must_use]
    pub fn with_actual_speedup(mut self, actual: f64) -> Self {
        self.actual = Some(actual);
        self
    }

    /// Adds `speedup_units` to an overhead component after the fact.
    ///
    /// Intended for software-side estimates the hardware cannot measure,
    /// chiefly [`Component::ParallelizationOverhead`] (§3.5). The addition
    /// reduces the base speedup accordingly; the stack still sums to `N`.
    ///
    /// # Panics
    ///
    /// Panics if `speedup_units` is negative or not finite.
    #[must_use]
    pub fn with_overhead_component(mut self, c: Component, speedup_units: f64) -> Self {
        assert!(
            speedup_units.is_finite() && speedup_units >= 0.0,
            "overhead component must be finite and non-negative"
        );
        self.overheads[c] += speedup_units;
        self
    }

    /// Number of threads `N` — the height of the stack.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.n
    }

    /// Duration of the multi-threaded run in cycles (`Tp`).
    #[must_use]
    pub fn tp_cycles(&self) -> u64 {
        self.tp_cycles
    }

    /// One overhead component, in speedup units.
    #[must_use]
    pub fn component(&self, c: Component) -> f64 {
        self.overheads.get(c)
    }

    /// All overhead components, in speedup units.
    #[must_use]
    pub fn overheads(&self) -> &Breakdown {
        &self.overheads
    }

    /// Sum of all overhead components.
    #[must_use]
    pub fn total_overhead(&self) -> f64 {
        self.overheads.total()
    }

    /// Positive LLC interference, in speedup units.
    #[must_use]
    pub fn positive_interference(&self) -> f64 {
        self.positive
    }

    /// Base speedup (Eq. 5): `N − Σ overheads`, i.e. the achieved speedup
    /// not counting positive interference. Clamped at zero.
    #[must_use]
    pub fn base_speedup(&self) -> f64 {
        (self.n as f64 - self.overheads.total()).max(0.0)
    }

    /// Estimated speedup (Eq. 4): base speedup plus positive interference.
    #[must_use]
    pub fn estimated_speedup(&self) -> f64 {
        self.base_speedup() + self.positive
    }

    /// Net negative LLC interference: the negative LLC component minus the
    /// positive component (can be negative when sharing pays off overall,
    /// as in Figure 9 for large LLCs).
    #[must_use]
    pub fn net_negative_llc(&self) -> f64 {
        self.overheads.get(Component::NegativeLlc) - self.positive
    }

    /// The actual measured speedup, if attached.
    #[must_use]
    pub fn actual_speedup(&self) -> Option<f64> {
        self.actual
    }

    /// Validation error `(Ŝ − S)/N` (Eq. 6), if an actual speedup was
    /// attached.
    #[must_use]
    pub fn validation_error(&self) -> Option<f64> {
        self.actual
            .map(|s| crate::estimate::speedup_error(self.estimated_speedup(), s, self.n))
    }

    /// Per-thread breakdowns (Figure 3's per-thread execution-time breakup).
    #[must_use]
    pub fn per_thread(&self) -> &[ThreadBreakdown] {
        &self.per_thread
    }

    /// Estimated total single-threaded execution time `T̂s = Σ T̂_i`
    /// (Eq. 2), in cycles.
    #[must_use]
    pub fn estimated_single_thread_cycles(&self) -> f64 {
        self.per_thread
            .iter()
            .map(|b| b.estimated_single_thread_cycles)
            .sum()
    }

    /// Checks the stack invariants: all components non-negative and finite,
    /// and `base + Σ overheads == N` (which holds by construction; this
    /// guards against post-hoc mutation via overflow).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.overheads.is_valid()
            && self.positive.is_finite()
            && self.positive >= 0.0
            && (self.base_speedup() + self.total_overhead() - self.n as f64).abs() < 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread(end: u64, spin: f64) -> ThreadCounters {
        ThreadCounters {
            active_end_cycle: end,
            spin_cycles: spin,
            ..ThreadCounters::default()
        }
    }

    fn stack2() -> SpeedupStack {
        let threads = [thread(1000, 200.0), thread(800, 0.0)];
        SpeedupStack::from_counters(&threads, 1000, &AccountingConfig::default()).unwrap()
    }

    #[test]
    fn sums_to_n() {
        let s = stack2();
        assert!((s.base_speedup() + s.total_overhead() - 2.0).abs() < 1e-12);
        assert!(s.is_valid());
    }

    #[test]
    fn components_in_speedup_units() {
        let s = stack2();
        assert_eq!(s.component(Component::Spinning), 0.2);
        assert_eq!(s.component(Component::Imbalance), 0.2);
        assert!((s.estimated_speedup() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn actual_and_error() {
        let s = stack2().with_actual_speedup(1.5);
        assert_eq!(s.actual_speedup(), Some(1.5));
        let e = s.validation_error().unwrap();
        assert!((e - 0.05).abs() < 1e-12); // (1.6 - 1.5)/2
    }

    #[test]
    fn positive_interference_included() {
        let t = ThreadCounters {
            active_end_cycle: 1000,
            llc_accesses: 100,
            sampled_llc_accesses: 100,
            sampled_interthread_hits: 2,
            llc_load_misses: 10,
            llc_load_miss_stall_cycles: 1000.0, // avg penalty 100
            ..ThreadCounters::default()
        };
        let s = SpeedupStack::from_counters(&[t], 1000, &AccountingConfig::default()).unwrap();
        assert!((s.positive_interference() - 0.2).abs() < 1e-12);
        assert!((s.estimated_speedup() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn net_negative_llc() {
        let t = ThreadCounters {
            active_end_cycle: 1000,
            llc_accesses: 100,
            sampled_llc_accesses: 100,
            sampled_interthread_hits: 1,
            sampled_interthread_miss_stall_cycles: 300.0,
            llc_load_misses: 10,
            llc_load_miss_stall_cycles: 1000.0,
            ..ThreadCounters::default()
        };
        let s = SpeedupStack::from_counters(&[t], 1000, &AccountingConfig::default()).unwrap();
        // negative = 0.3, positive = 0.1 => net = 0.2
        assert!((s.net_negative_llc() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn with_overhead_component_reduces_base() {
        let s = stack2();
        let base_before = s.base_speedup();
        let s = s.with_overhead_component(Component::ParallelizationOverhead, 0.3);
        assert!((s.base_speedup() - (base_before - 0.3)).abs() < 1e-12);
        assert!(s.is_valid());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn with_overhead_component_rejects_negative() {
        let _ = stack2().with_overhead_component(Component::Spinning, -0.1);
    }

    #[test]
    fn estimated_single_thread_cycles_sums() {
        let s = stack2();
        // thread 0: 1000 - 200 = 800; thread 1: 1000 - 200(imbalance) = 800
        assert!((s.estimated_single_thread_cycles() - 1600.0).abs() < 1e-12);
    }

    #[test]
    fn per_thread_exposed() {
        let s = stack2();
        assert_eq!(s.per_thread().len(), 2);
    }
}
