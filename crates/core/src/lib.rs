//! # Speedup stacks
//!
//! A library for computing **speedup stacks**, the scaling-bottleneck
//! decomposition for multi-threaded applications introduced by Eyerman,
//! Du Bois and Eeckhout in *"Speedup Stacks: Identifying Scaling
//! Bottlenecks in Multi-Threaded Applications"* (ISPASS 2012).
//!
//! A speedup stack is a stacked bar of height `N` (the number of
//! threads/cores). Its components are the *achieved speedup* plus a set of
//! *scaling delimiters* — the reasons the application does not achieve the
//! ideal `N`-fold speedup:
//!
//! - negative interference in the shared last-level cache (LLC),
//! - negative interference in the memory subsystem (bus, banks, open pages),
//! - spinning on lock and barrier variables,
//! - yielding (threads scheduled out while waiting),
//! - load imbalance,
//! - cache coherency, and
//! - parallelization overhead.
//!
//! Positive interference (inter-thread hits in the shared LLC) *adds* to
//! the achieved speedup and is reported as its own component.
//!
//! The key property is that a speedup stack is computed from a **single
//! multi-threaded run**: a per-thread cycle accounting architecture
//! (modelled in [`counters`] and [`accounting`]) attributes cycles to each
//! delimiter, and the single-threaded execution time — hence the speedup —
//! is *estimated* by subtracting those components from the measured
//! per-thread execution time ([`estimate`]).
//!
//! ## Quick example
//!
//! ```
//! use speedup_stacks::{ThreadCounters, AccountingConfig, SpeedupStack};
//!
//! // Raw counters for a 2-thread run lasting 1000 cycles, as produced by
//! // the cycle accounting hardware (or a simulator such as `cmpsim`).
//! let tp = 1_000u64;
//! let threads = vec![
//!     ThreadCounters { active_end_cycle: 1000, spin_cycles: 50.0,
//!                      ..ThreadCounters::default() },
//!     ThreadCounters { active_end_cycle: 900, yield_cycles: 40.0,
//!                      ..ThreadCounters::default() },
//! ];
//! let stack = SpeedupStack::from_counters(&threads, tp, &AccountingConfig::default())?;
//! assert_eq!(stack.num_threads(), 2);
//! // Components plus base speedup always sum to N.
//! assert!((stack.base_speedup() + stack.total_overhead() - 2.0).abs() < 1e-9);
//! # Ok::<(), speedup_stacks::StackError>(())
//! ```
//!
//! ## Crate map
//!
//! - [`components`] — the component vocabulary ([`Component`], [`Breakdown`]).
//! - [`counters`] — raw per-thread event counts ([`ThreadCounters`]).
//! - [`accounting`] — turning raw counters into per-thread cycle components
//!   (extrapolation for sampled negative interference, interpolation for
//!   positive interference, imbalance fill).
//! - [`crc`] — the CRC-32 shared by the journal and trace formats.
//! - [`stack`] — the [`SpeedupStack`] type and its invariants.
//! - [`estimate`] — the paper's formulas (Eqs. 1–6): estimated
//!   single-threaded time, estimated speedup, validation error.
//! - [`render`] — ASCII rendering of stacks (Figure 2 / Figure 5 style).
//! - [`report`] — structured experiment reports ([`Report`]): typed
//!   tables, scalar metrics with units and stack groups, with text, JSON
//!   and CSV emitters (the uniform output model of the study registry).
//! - [`classify`] — the benchmark classification tree (Figure 6).
//! - [`hwcost`] — the hardware cost model (§4.7: 1.1 KB/core, 18 KB total).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accounting;
pub mod classify;
pub mod components;
pub mod counters;
pub mod crc;
pub mod error;
pub mod estimate;
pub mod hwcost;
pub mod render;
pub mod report;
pub mod stack;

pub use accounting::{AccountingConfig, ThreadBreakdown};
pub use classify::{ClassificationConfig, ClassificationTree, ClassifiedBenchmark, ScalingClass};
pub use components::{Breakdown, Component};
pub use counters::ThreadCounters;
pub use error::{
    ConfigError, FederationError, JournalError, PointError, SimError, StackError, TraceError,
};
pub use estimate::{estimated_speedup, speedup_error, ValidationPoint};
pub use hwcost::HardwareCostModel;
pub use report::Report;
pub use stack::SpeedupStack;
