//! Hardware cost model for the cycle accounting architecture (§4.7).
//!
//! The paper reports 952 bytes per core for the interference accounting
//! (ATD + ORA + raw counters, from reference \[7\]) plus 217 bytes for the Tian et al.
//! spin-detection load table, totalling ~1.1 KB per core and 18 KB for a
//! 16-core CMP. This module recomputes those budgets from the structure
//! geometries so design-space changes (more sampled sets, wider tags,
//! bigger load tables) can be costed.

/// Parametric storage cost model for one core's accounting hardware.
///
/// # Examples
///
/// ```
/// use speedup_stacks::HardwareCostModel;
/// let m = HardwareCostModel::paper_default();
/// assert_eq!(m.interference_bytes(), 952);
/// assert_eq!(m.spin_table_bytes(), 217);
/// assert_eq!(m.total_bytes_per_core(), 1169); // ≈ 1.1 KB
/// assert_eq!(m.total_bytes(16), 18704);       // ≈ 18 KB
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HardwareCostModel {
    /// Number of LLC sets monitored by each core's ATD.
    pub atd_sampled_sets: u32,
    /// LLC/ATD associativity (ways per set).
    pub atd_ways: u32,
    /// Bits per ATD entry (partial tag + status bits).
    pub atd_entry_bits: u32,
    /// Number of DRAM banks tracked by the per-core open row array.
    pub ora_banks: u32,
    /// Bits per ORA entry (row id + valid bit).
    pub ora_entry_bits: u32,
    /// Number of 64-bit raw event counters per core (interference cycles,
    /// LLC miss stalls, LLC miss count, ...).
    pub interference_counters: u32,
    /// Entries in the Tian et al. spin-detection load table (a spin loop is
    /// assumed to contain at most this many loads).
    pub spin_table_entries: u32,
    /// Bits per load-table entry: load PC + address + loaded data + mark
    /// bit + timestamp.
    pub spin_entry_bits: u32,
}

impl HardwareCostModel {
    /// The configuration used in the paper: 952 B interference accounting
    /// per reference \[7\] and an 8-entry load table at 217 bits per entry
    /// (64 b PC + 64 b address + 64 b data + 1 b mark + 24 b timestamp).
    #[must_use]
    pub const fn paper_default() -> Self {
        HardwareCostModel {
            atd_sampled_sets: 32,
            atd_ways: 16,
            atd_entry_bits: 14,
            ora_banks: 8,
            ora_entry_bits: 32,
            interference_counters: 3,
            spin_table_entries: 8,
            spin_entry_bits: 64 + 64 + 64 + 1 + 24,
        }
    }

    /// Bytes for the ATD of one core.
    #[must_use]
    pub const fn atd_bytes(&self) -> u64 {
        bits_to_bytes(
            self.atd_sampled_sets as u64 * self.atd_ways as u64 * self.atd_entry_bits as u64,
        )
    }

    /// Bytes for the open row array of one core.
    #[must_use]
    pub const fn ora_bytes(&self) -> u64 {
        bits_to_bytes(self.ora_banks as u64 * self.ora_entry_bits as u64)
    }

    /// Bytes for the raw event counters of one core.
    #[must_use]
    pub const fn counter_bytes(&self) -> u64 {
        self.interference_counters as u64 * 8
    }

    /// Bytes for the negative/positive interference accounting of one core
    /// (ATD + ORA + counters; the paper's 952 B).
    #[must_use]
    pub const fn interference_bytes(&self) -> u64 {
        self.atd_bytes() + self.ora_bytes() + self.counter_bytes()
    }

    /// Bytes for the Tian et al. spin-detection load table of one core
    /// (the paper's 217 B).
    #[must_use]
    pub const fn spin_table_bytes(&self) -> u64 {
        bits_to_bytes(self.spin_table_entries as u64 * self.spin_entry_bits as u64)
    }

    /// Total accounting bytes per core (the paper's ~1.1 KB).
    #[must_use]
    pub const fn total_bytes_per_core(&self) -> u64 {
        self.interference_bytes() + self.spin_table_bytes()
    }

    /// Total accounting bytes for an `n`-core CMP (the paper's ~18 KB for
    /// 16 cores).
    #[must_use]
    pub const fn total_bytes(&self, n_cores: u32) -> u64 {
        self.total_bytes_per_core() * n_cores as u64
    }
}

impl Default for HardwareCostModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

const fn bits_to_bytes(bits: u64) -> u64 {
    bits.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let m = HardwareCostModel::paper_default();
        assert_eq!(m.atd_bytes(), 896);
        assert_eq!(m.ora_bytes(), 32);
        assert_eq!(m.counter_bytes(), 24);
        assert_eq!(m.interference_bytes(), 952);
        assert_eq!(m.spin_table_bytes(), 217);
        // ~1.1 KB per core, ~18 KB for 16 cores
        assert_eq!(m.total_bytes_per_core(), 1169);
        assert!((m.total_bytes_per_core() as f64 / 1024.0 - 1.1).abs() < 0.05);
        assert!((m.total_bytes(16) as f64 / 1024.0 - 18.0).abs() < 0.3);
    }

    #[test]
    fn spin_entry_is_217_bits() {
        let m = HardwareCostModel::paper_default();
        assert_eq!(m.spin_entry_bits, 217);
    }

    #[test]
    fn scaling_with_geometry() {
        let mut m = HardwareCostModel::paper_default();
        m.atd_sampled_sets *= 2;
        assert_eq!(m.atd_bytes(), 1792);
    }

    #[test]
    fn bits_round_up() {
        assert_eq!(bits_to_bytes(1), 1);
        assert_eq!(bits_to_bytes(8), 1);
        assert_eq!(bits_to_bytes(9), 2);
    }
}
