//! ASCII rendering of speedup stacks (Figure 2 / Figure 5 style).
//!
//! The renderer draws each stack as a horizontal bar of fixed character
//! width, where each segment's width is proportional to its share of `N`:
//! `#` for base speedup, `+` for positive interference, and the
//! [`Component::code`] letter for each overhead component. A legend with
//! exact values accompanies the bar.
//!
//! For core-count sweeps, [`render_sweep`] draws one bar per stack with
//! the *bar width itself proportional to `N`*, so a 1→128-core series
//! reads as a growth chart: the full-width bar is the widest machine and
//! each smaller machine occupies its proportional share.

use crate::components::Component;
use crate::stack::SpeedupStack;
use std::fmt::Write as _;

/// Options controlling stack rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RenderOptions {
    /// Total bar width in characters (the full width represents `N`).
    pub width: usize,
    /// Hide components contributing less than this fraction of `N` from
    /// the legend (they still occupy bar space if they round to ≥1 char).
    pub legend_cutoff_permille: u32,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            width: 64,
            legend_cutoff_permille: 5,
        }
    }
}

/// Renders one stack as a bar plus legend.
///
/// # Examples
///
/// ```
/// use speedup_stacks::{render, SpeedupStack, ThreadCounters, AccountingConfig};
/// let threads = vec![
///     ThreadCounters { active_end_cycle: 1000, spin_cycles: 500.0,
///                      ..ThreadCounters::default() },
///     ThreadCounters { active_end_cycle: 1000, ..ThreadCounters::default() },
/// ];
/// let stack = SpeedupStack::from_counters(&threads, 1000, &AccountingConfig::default())?;
/// let art = render::render_stack("demo", &stack, &render::RenderOptions::default());
/// assert!(art.contains("demo"));
/// assert!(art.contains("spinning"));
/// # Ok::<(), speedup_stacks::StackError>(())
/// ```
#[must_use]
pub fn render_stack(label: &str, stack: &SpeedupStack, opts: &RenderOptions) -> String {
    let n = stack.num_threads() as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{label}: N={} estimated speedup={:.2}{}",
        stack.num_threads(),
        stack.estimated_speedup(),
        match stack.actual_speedup() {
            Some(a) => format!(" actual={a:.2}"),
            None => String::new(),
        }
    );

    // Bar: base, then positive, then overheads in stack order.
    let bar = draw_bar(stack, opts.width);
    let _ = writeln!(out, "  {bar}");

    // Legend.
    let _ = writeln!(
        out,
        "  # base speedup          {:>8.3}  ({:>5.1}% of N)",
        stack.base_speedup(),
        stack.base_speedup() / n * 100.0
    );
    if stack.positive_interference() > 0.0 {
        let _ = writeln!(
            out,
            "  + positive interference {:>8.3}  ({:>5.1}% of N)",
            stack.positive_interference(),
            stack.positive_interference() / n * 100.0
        );
    }
    let cutoff = opts.legend_cutoff_permille as f64 / 1000.0 * n;
    for (c, v) in stack.overheads().iter() {
        if v >= cutoff {
            let _ = writeln!(
                out,
                "  {} {:<22} {:>8.3}  ({:>5.1}% of N)",
                c.code(),
                c.to_string(),
                v,
                v / n * 100.0
            );
        }
    }
    out
}

/// Draws the proportional segment bar of one stack into `bar_width`
/// characters (the shared segment logic of [`render_stack`] and
/// [`render_sweep`]).
fn draw_bar(stack: &SpeedupStack, bar_width: usize) -> String {
    let n = stack.num_threads() as f64;
    let mut segments: Vec<(char, f64)> = vec![
        ('#', stack.base_speedup()),
        ('+', stack.positive_interference()),
    ];
    for (c, v) in stack.overheads().iter() {
        segments.push((c.code(), v));
    }
    let mut bar = String::with_capacity(bar_width + 2);
    bar.push('|');
    let mut used = 0usize;
    let mut carried = 0.0f64;
    for (ch, v) in &segments {
        let exact = v / n * bar_width as f64 + carried;
        let w = exact.round() as usize;
        carried = exact - w as f64;
        for _ in 0..w.min(bar_width - used) {
            bar.push(*ch);
        }
        used = (used + w).min(bar_width);
    }
    while used < bar_width {
        bar.push(' ');
        used += 1;
    }
    bar.push('|');
    bar
}

/// Renders a core-count sweep as a growth chart: one bar per stack, the
/// bar *width* proportional to that stack's `N` relative to the widest
/// stack in the series (which gets the full `opts.width`). Within each
/// bar, segments are proportional to their share of that stack's `N` as
/// usual, so ideal scaling shows as a solid `#` wedge and every scaling
/// delimiter as a growing coloured tail.
///
/// # Examples
///
/// ```
/// use speedup_stacks::{render, SpeedupStack, ThreadCounters, AccountingConfig};
/// let mk = |n: usize| {
///     let t = vec![ThreadCounters { active_end_cycle: 1000, ..Default::default() }; n];
///     SpeedupStack::from_counters(&t, 1000, &AccountingConfig::default()).unwrap()
/// };
/// let series = vec![("N=2".to_string(), mk(2)), ("N=8".to_string(), mk(8))];
/// let art = render::render_sweep("demo sweep", &series, &render::RenderOptions::default());
/// assert!(art.contains("demo sweep"));
/// assert!(art.lines().count() >= 3);
/// ```
#[must_use]
pub fn render_sweep(
    title: &str,
    series: &[(String, SpeedupStack)],
    opts: &RenderOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title} (bar width proportional to N)");
    let Some(max_n) = series.iter().map(|(_, s)| s.num_threads()).max() else {
        return out;
    };
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, stack) in series {
        let bar_width = (opts.width * stack.num_threads() / max_n).max(1);
        let bar = draw_bar(stack, bar_width);
        let _ = write!(out, "  {label:<label_w$} {bar}");
        for _ in bar_width..opts.width {
            out.push(' ');
        }
        let _ = write!(out, " est={:>7.2}", stack.estimated_speedup());
        match stack.actual_speedup() {
            Some(a) => {
                let _ = writeln!(out, " act={a:>7.2}");
            }
            None => {
                let _ = writeln!(out);
            }
        }
    }
    out
}

/// Renders several stacks as an aligned comparison table (Figure 5 style):
/// one row per stack, one column per component.
///
/// # Examples
///
/// ```
/// use speedup_stacks::{render, SpeedupStack, ThreadCounters, AccountingConfig};
/// let t = vec![ThreadCounters { active_end_cycle: 100, ..Default::default() }];
/// let s = SpeedupStack::from_counters(&t, 100, &AccountingConfig::default())?;
/// let table = render::render_table(&[("run".to_string(), s)]);
/// assert!(table.contains("base"));
/// # Ok::<(), speedup_stacks::StackError>(())
/// ```
#[must_use]
pub fn render_table(stacks: &[(String, SpeedupStack)]) -> String {
    let mut out = String::new();
    let name_w = stacks
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once("benchmark".len()))
        .max()
        .unwrap_or(9);
    let _ = write!(
        out,
        "{:<name_w$}  {:>3}  {:>7}  {:>7}",
        "benchmark", "N", "base", "pos"
    );
    for c in Component::ALL {
        let _ = write!(out, "  {:>9}", c.label());
    }
    let _ = writeln!(out, "  {:>7}  {:>7}", "est.S", "act.S");
    for (name, s) in stacks {
        let _ = write!(
            out,
            "{:<name_w$}  {:>3}  {:>7.3}  {:>7.3}",
            name,
            s.num_threads(),
            s.base_speedup(),
            s.positive_interference()
        );
        for c in Component::ALL {
            let _ = write!(out, "  {:>9.3}", s.component(c));
        }
        let _ = write!(out, "  {:>7.3}", s.estimated_speedup());
        match s.actual_speedup() {
            Some(a) => {
                let _ = writeln!(out, "  {a:>7.3}");
            }
            None => {
                let _ = writeln!(out, "  {:>7}", "-");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::AccountingConfig;
    use crate::counters::ThreadCounters;

    fn demo_stack() -> SpeedupStack {
        let threads = vec![
            ThreadCounters {
                active_end_cycle: 1000,
                spin_cycles: 250.0,
                yield_cycles: 250.0,
                ..ThreadCounters::default()
            },
            ThreadCounters {
                active_end_cycle: 500,
                ..ThreadCounters::default()
            },
        ];
        SpeedupStack::from_counters(&threads, 1000, &AccountingConfig::default()).unwrap()
    }

    #[test]
    fn bar_has_requested_width() {
        let opts = RenderOptions {
            width: 40,
            ..RenderOptions::default()
        };
        let art = render_stack("x", &demo_stack(), &opts);
        let bar_line = art.lines().nth(1).unwrap().trim();
        assert_eq!(bar_line.len(), 42); // 40 + two '|'
    }

    #[test]
    fn legend_mentions_components() {
        let art = render_stack("x", &demo_stack(), &RenderOptions::default());
        assert!(art.contains("spinning"));
        assert!(art.contains("yielding"));
        assert!(art.contains("imbalance"));
        assert!(art.contains("base speedup"));
    }

    #[test]
    fn legend_cutoff_hides_small() {
        let opts = RenderOptions {
            legend_cutoff_permille: 990,
            ..RenderOptions::default()
        };
        let art = render_stack("x", &demo_stack(), &opts);
        assert!(!art.contains("spinning"));
    }

    #[test]
    fn bar_segment_chars_proportional() {
        // base = 0.5 of N => half the bar is '#'.
        let opts = RenderOptions {
            width: 40,
            ..RenderOptions::default()
        };
        let art = render_stack("x", &demo_stack(), &opts);
        let bar = art.lines().nth(1).unwrap();
        let hashes = bar.chars().filter(|&c| c == '#').count();
        assert!((19..=21).contains(&hashes), "got {hashes} hashes");
    }

    #[test]
    fn sweep_bar_widths_proportional_to_n() {
        let mk = |n: usize| {
            let t = vec![
                ThreadCounters {
                    active_end_cycle: 1000,
                    ..ThreadCounters::default()
                };
                n
            ];
            SpeedupStack::from_counters(&t, 1000, &AccountingConfig::default()).unwrap()
        };
        let series = vec![
            ("N=1".to_string(), mk(1)),
            ("N=4".to_string(), mk(4)),
            ("N=8".to_string(), mk(8)),
        ];
        let opts = RenderOptions {
            width: 40,
            ..RenderOptions::default()
        };
        let art = render_sweep("sweep", &series, &opts);
        let widths: Vec<usize> = art
            .lines()
            .skip(1)
            .map(|l| {
                let open = l.find('|').unwrap();
                let close = l.rfind('|').unwrap();
                close - open - 1
            })
            .collect();
        assert_eq!(widths, vec![5, 20, 40]);
    }

    #[test]
    fn sweep_handles_empty_series() {
        let art = render_sweep("empty", &[], &RenderOptions::default());
        assert!(art.starts_with("empty"));
        assert_eq!(art.lines().count(), 1);
    }

    #[test]
    fn table_contains_rows_and_header() {
        let table = render_table(&[("demo".to_string(), demo_stack())]);
        assert!(table.starts_with("benchmark"));
        assert!(table.contains("demo"));
        assert!(table.contains("yielding"));
    }

    #[test]
    fn table_shows_actual_when_present() {
        let s = demo_stack().with_actual_speedup(1.23);
        let table = render_table(&[("demo".to_string(), s)]);
        assert!(table.contains("1.230"));
    }
}
