//! The speedup-stack component vocabulary.
//!
//! A speedup stack decomposes the gap between the ideal speedup `N` and the
//! achieved speedup into *overhead components* (scaling delimiters). This
//! module defines the closed set of overhead components used by the paper
//! ([`Component`]) and a dense map from component to a value
//! ([`Breakdown`]).
//!
//! Positive LLC interference is *not* a [`Component`]: it increases rather
//! than decreases speedup and is carried separately by
//! [`SpeedupStack`](crate::stack::SpeedupStack).

use core::fmt;
use core::ops::{Add, AddAssign, Index, IndexMut};

/// A scaling delimiter: one overhead component of a speedup stack.
///
/// The variants mirror Section 3 of the paper. Each represents cycles a
/// thread spent *not* making single-threaded-equivalent forward progress.
///
/// # Examples
///
/// ```
/// use speedup_stacks::Component;
/// assert_eq!(Component::Spinning.to_string(), "spinning");
/// assert_eq!(Component::ALL.len(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Component {
    /// Negative interference in the shared LLC: additional misses caused by
    /// other threads evicting this thread's data (inter-thread misses).
    NegativeLlc,
    /// Negative interference in the memory subsystem: waiting for the
    /// memory bus or a bank occupied by another core, and open-page
    /// conflicts caused by other cores.
    NegativeMemory,
    /// Additional misses caused by the cache coherency protocol
    /// invalidating lines in private caches. The paper's default
    /// accounting counts these events but does not charge them (a balanced
    /// out-of-order core hides most L1 misses).
    CacheCoherency,
    /// Active spinning on lock and barrier variables.
    Spinning,
    /// Time scheduled out by the OS while waiting on a barrier or a highly
    /// contended lock.
    Yielding,
    /// Threads waiting for the slowest thread to finish the parallel
    /// section.
    Imbalance,
    /// Extra instructions executed because the program is parallel
    /// (communication, recomputation, lock management). The paper's
    /// hardware accounting cannot measure this; it is included in the
    /// vocabulary so software estimates can be attached.
    ParallelizationOverhead,
}

impl Component {
    /// All components, in stack order (bottom-most overhead first).
    pub const ALL: [Component; 7] = [
        Component::NegativeLlc,
        Component::NegativeMemory,
        Component::CacheCoherency,
        Component::Spinning,
        Component::Yielding,
        Component::Imbalance,
        Component::ParallelizationOverhead,
    ];

    /// Number of components.
    pub const COUNT: usize = Self::ALL.len();

    /// A stable dense index in `0..Component::COUNT`.
    ///
    /// ```
    /// use speedup_stacks::Component;
    /// assert_eq!(Component::NegativeLlc.index(), 0);
    /// assert_eq!(Component::ParallelizationOverhead.index(), 6);
    /// ```
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Component::NegativeLlc => 0,
            Component::NegativeMemory => 1,
            Component::CacheCoherency => 2,
            Component::Spinning => 3,
            Component::Yielding => 4,
            Component::Imbalance => 5,
            Component::ParallelizationOverhead => 6,
        }
    }

    /// Short label used in rendered stacks and the classification tree.
    ///
    /// ```
    /// use speedup_stacks::Component;
    /// assert_eq!(Component::NegativeLlc.label(), "cache");
    /// ```
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Component::NegativeLlc => "cache",
            Component::NegativeMemory => "memory",
            Component::CacheCoherency => "coherency",
            Component::Spinning => "spinning",
            Component::Yielding => "yielding",
            Component::Imbalance => "imbalance",
            Component::ParallelizationOverhead => "overhead",
        }
    }

    /// Single-character code used by the ASCII bar renderer.
    #[must_use]
    pub const fn code(self) -> char {
        match self {
            Component::NegativeLlc => 'C',
            Component::NegativeMemory => 'M',
            Component::CacheCoherency => 'H',
            Component::Spinning => 'S',
            Component::Yielding => 'Y',
            Component::Imbalance => 'I',
            Component::ParallelizationOverhead => 'P',
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Component::NegativeLlc => "negative LLC interference",
            Component::NegativeMemory => "negative memory interference",
            Component::CacheCoherency => "cache coherency",
            Component::Spinning => "spinning",
            Component::Yielding => "yielding",
            Component::Imbalance => "imbalance",
            Component::ParallelizationOverhead => "parallelization overhead",
        };
        f.write_str(name)
    }
}

/// A dense map from [`Component`] to an `f64` value.
///
/// Used both for per-thread cycle counts and for aggregated speedup-stack
/// components (cycles divided by `Tp`). Supports component-wise addition.
///
/// # Examples
///
/// ```
/// use speedup_stacks::{Breakdown, Component};
/// let mut b = Breakdown::zero();
/// b[Component::Spinning] = 120.0;
/// b[Component::Yielding] = 30.0;
/// assert_eq!(b.total(), 150.0);
/// assert_eq!(b.largest(), Some((Component::Spinning, 120.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Breakdown {
    values: [f64; Component::COUNT],
}

impl Breakdown {
    /// An all-zero breakdown.
    #[must_use]
    pub const fn zero() -> Self {
        Breakdown {
            values: [0.0; Component::COUNT],
        }
    }

    /// Value for one component.
    #[must_use]
    pub fn get(&self, c: Component) -> f64 {
        self.values[c.index()]
    }

    /// Sets the value for one component.
    pub fn set(&mut self, c: Component, v: f64) {
        self.values[c.index()] = v;
    }

    /// Sum of all components.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Iterates `(component, value)` pairs in stack order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, f64)> + '_ {
        Component::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// The component with the largest value, if any value is non-zero.
    ///
    /// Ties resolve to the earliest component in stack order.
    #[must_use]
    pub fn largest(&self) -> Option<(Component, f64)> {
        let (c, v) = Component::ALL.iter().map(|&c| (c, self.get(c))).fold(
            (Component::NegativeLlc, f64::NEG_INFINITY),
            |acc, cur| {
                if cur.1 > acc.1 {
                    cur
                } else {
                    acc
                }
            },
        );
        if v > 0.0 {
            Some((c, v))
        } else {
            None
        }
    }

    /// Components sorted by descending value.
    #[must_use]
    pub fn ranked(&self) -> Vec<(Component, f64)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(core::cmp::Ordering::Equal));
        v
    }

    /// Scales every component by `factor`, returning a new breakdown.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = *self;
        for v in &mut out.values {
            *v *= factor;
        }
        out
    }

    /// Returns true if every component is finite and non-negative.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.values.iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Index<Component> for Breakdown {
    type Output = f64;

    fn index(&self, c: Component) -> &f64 {
        &self.values[c.index()]
    }
}

impl IndexMut<Component> for Breakdown {
    fn index_mut(&mut self, c: Component) -> &mut f64 {
        &mut self.values[c.index()]
    }
}

impl Add for Breakdown {
    type Output = Breakdown;

    fn add(mut self, rhs: Breakdown) -> Breakdown {
        self += rhs;
        self
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        for (a, b) in self.values.iter_mut().zip(rhs.values.iter()) {
            *a += *b;
        }
    }
}

impl FromIterator<(Component, f64)> for Breakdown {
    fn from_iter<I: IntoIterator<Item = (Component, f64)>>(iter: I) -> Self {
        let mut b = Breakdown::zero();
        for (c, v) in iter {
            b[c] += v;
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; Component::COUNT];
        for c in Component::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<char> = Component::ALL.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Component::COUNT);
    }

    #[test]
    fn breakdown_total_and_index() {
        let mut b = Breakdown::zero();
        b[Component::Spinning] = 10.0;
        b[Component::Imbalance] = 2.5;
        assert_eq!(b.total(), 12.5);
        assert_eq!(b.get(Component::Spinning), 10.0);
        assert_eq!(b[Component::Yielding], 0.0);
    }

    #[test]
    fn breakdown_add() {
        let mut a = Breakdown::zero();
        a[Component::Yielding] = 1.0;
        let mut b = Breakdown::zero();
        b[Component::Yielding] = 2.0;
        b[Component::NegativeLlc] = 3.0;
        let c = a + b;
        assert_eq!(c[Component::Yielding], 3.0);
        assert_eq!(c[Component::NegativeLlc], 3.0);
    }

    #[test]
    fn largest_none_when_zero() {
        assert_eq!(Breakdown::zero().largest(), None);
    }

    #[test]
    fn largest_picks_max() {
        let mut b = Breakdown::zero();
        b[Component::NegativeMemory] = 5.0;
        b[Component::Spinning] = 7.0;
        assert_eq!(b.largest(), Some((Component::Spinning, 7.0)));
    }

    #[test]
    fn ranked_is_descending() {
        let mut b = Breakdown::zero();
        b[Component::NegativeLlc] = 1.0;
        b[Component::Spinning] = 3.0;
        b[Component::Yielding] = 2.0;
        let r = b.ranked();
        assert_eq!(r[0].0, Component::Spinning);
        assert_eq!(r[1].0, Component::Yielding);
        assert_eq!(r[2].0, Component::NegativeLlc);
    }

    #[test]
    fn from_iterator_accumulates() {
        let b: Breakdown = [
            (Component::Spinning, 1.0),
            (Component::Spinning, 2.0),
            (Component::Yielding, 4.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(b[Component::Spinning], 3.0);
        assert_eq!(b[Component::Yielding], 4.0);
    }

    #[test]
    fn scaled_multiplies_all() {
        let mut b = Breakdown::zero();
        b[Component::Imbalance] = 2.0;
        let s = b.scaled(2.5);
        assert_eq!(s[Component::Imbalance], 5.0);
        assert_eq!(s.total(), 5.0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Component::Yielding.label(), "yielding");
        assert_eq!(
            format!("{}", Component::NegativeLlc),
            "negative LLC interference"
        );
    }

    #[test]
    fn validity_rejects_negative_and_nan() {
        let mut b = Breakdown::zero();
        assert!(b.is_valid());
        b[Component::Spinning] = -1.0;
        assert!(!b.is_valid());
        b[Component::Spinning] = f64::NAN;
        assert!(!b.is_valid());
    }
}
