//! Compile-time verification that the `serde` feature derives
//! `Serialize`/`Deserialize` for every data type a downstream consumer
//! would persist (C-SERDE).
#![cfg(feature = "serde")]

use speedup_stacks::estimate::ValidationPoint;
use speedup_stacks::{
    AccountingConfig, Breakdown, ClassificationConfig, ClassifiedBenchmark, Component,
    HardwareCostModel, ScalingClass, SpeedupStack, ThreadBreakdown, ThreadCounters,
};

fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}

#[test]
fn all_data_types_are_serde() {
    assert_serde::<Component>();
    assert_serde::<Breakdown>();
    assert_serde::<ThreadCounters>();
    assert_serde::<ThreadBreakdown>();
    assert_serde::<AccountingConfig>();
    assert_serde::<SpeedupStack>();
    assert_serde::<ScalingClass>();
    assert_serde::<ClassificationConfig>();
    assert_serde::<ClassifiedBenchmark>();
    assert_serde::<HardwareCostModel>();
    assert_serde::<ValidationPoint>();
}
