//! Property-style tests of the accounting and stack invariants.
//!
//! No proptest offline, so these run deterministic randomized sweeps: a
//! SplitMix64 generator drives a fixed number of cases per property. The
//! case streams are stable, so failures reproduce exactly.

use speedup_stacks::{
    accounting, AccountingConfig, Breakdown, Component, SpeedupStack, ThreadCounters,
};

/// Deterministic SplitMix64 stream (inlined: this crate has no deps).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn float(&mut self, hi: f64) -> f64 {
        self.unit() * hi
    }
}

fn arb_counters(rng: &mut Rng, tp: u64) -> ThreadCounters {
    let s_acc = 1 + rng.below(1999);
    let acc = rng.below(20_000);
    ThreadCounters {
        active_end_cycle: rng.below(tp + 1),
        spin_cycles: rng.float(2e6),
        yield_cycles: rng.float(2e6),
        mem_interference_cycles: rng.float(2e6),
        sampled_interthread_miss_stall_cycles: rng.float(5e5),
        sampled_interthread_misses: rng.below(500),
        sampled_interthread_hits: rng.below(500),
        sampled_llc_accesses: s_acc,
        llc_accesses: acc.max(s_acc),
        llc_load_misses: rng.below(2000),
        llc_load_miss_stall_cycles: rng.float(2e6),
        coherency_miss_cycles: 0.0,
        instructions: 0,
        spin_instructions: 0,
    }
}

fn arb_thread_vec(rng: &mut Rng, tp: u64, max_threads: u64) -> Vec<ThreadCounters> {
    let n = 1 + rng.below(max_threads) as usize;
    (0..n).map(|_| arb_counters(rng, tp)).collect()
}

#[test]
fn stacks_always_sum_to_n() {
    let mut rng = Rng(0x00A1_1CE5);
    for _ in 0..128 {
        let tp = 1_000_000u64;
        let threads = arb_thread_vec(&mut rng, tp, 16);
        let stack =
            SpeedupStack::from_counters(&threads, tp, &AccountingConfig::default()).unwrap();
        assert!(stack.is_valid());
        let n = threads.len() as f64;
        assert!((stack.base_speedup() + stack.total_overhead() - n).abs() < 1e-6);
        assert!(stack.positive_interference() >= 0.0);
    }
}

#[test]
fn estimate_reverses_breakup() {
    // Eq. 2/3 consistency: Ŝ == T̂s / Tp.
    let mut rng = Rng(0xB0B);
    for _ in 0..128 {
        let tp = 500_000u64;
        let threads = arb_thread_vec(&mut rng, tp, 8);
        let stack =
            SpeedupStack::from_counters(&threads, tp, &AccountingConfig::default()).unwrap();
        let via_ts = stack.estimated_single_thread_cycles() / tp as f64;
        assert!((via_ts - stack.estimated_speedup()).abs() < 1e-6);
    }
}

#[test]
fn clamped_accounting_never_negative() {
    let mut rng = Rng(0xC0FFEE);
    for _ in 0..128 {
        let threads = arb_thread_vec(&mut rng, 100_000, 8);
        let b = accounting::account(&threads, 100_000, &AccountingConfig::default()).unwrap();
        for t in &b {
            assert!(t.estimated_single_thread_cycles >= 0.0);
            assert!(t.overheads.is_valid());
            assert!(t.positive_cycles >= 0.0);
        }
    }
}

#[test]
fn aggregate_matches_manual_sum() {
    let mut rng = Rng(0xD00D);
    for _ in 0..128 {
        let tp = 200_000u64;
        let threads = arb_thread_vec(&mut rng, tp, 8);
        let b = accounting::account(&threads, tp, &AccountingConfig::default()).unwrap();
        let (agg, pos) = accounting::aggregate(&b, tp);
        let manual: f64 = b.iter().map(|t| t.overheads.total()).sum::<f64>() / tp as f64;
        assert!((agg.total() - manual).abs() < 1e-9);
        let manual_pos: f64 = b.iter().map(|t| t.positive_cycles).sum::<f64>() / tp as f64;
        assert!((pos - manual_pos).abs() < 1e-9);
    }
}

#[test]
fn breakdown_add_is_commutative_and_total_linear() {
    let mut rng = Rng(0xE44);
    for _ in 0..128 {
        let mut ba = Breakdown::zero();
        let mut bb = Breakdown::zero();
        for c in Component::ALL {
            ba[c] = rng.float(1e6);
            bb[c] = rng.float(1e6);
        }
        let ab = ba + bb;
        let ba2 = bb + ba;
        assert_eq!(ab, ba2);
        assert!((ab.total() - (ba.total() + bb.total())).abs() < 1e-6);
    }
}

#[test]
fn ranked_is_a_permutation_in_descending_order() {
    let mut rng = Rng(0xF00);
    for _ in 0..128 {
        let mut b = Breakdown::zero();
        for c in Component::ALL {
            b[c] = rng.float(1e6);
        }
        let ranked = b.ranked();
        assert_eq!(ranked.len(), Component::COUNT);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        let sum: f64 = ranked.iter().map(|(_, v)| v).sum();
        assert!((sum - b.total()).abs() < 1e-6);
    }
}
