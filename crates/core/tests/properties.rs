//! Property-based tests of the accounting and stack invariants.

use proptest::prelude::*;
use speedup_stacks::{accounting, AccountingConfig, Breakdown, Component, SpeedupStack, ThreadCounters};

fn arb_counters(tp: u64) -> impl Strategy<Value = ThreadCounters> {
    (
        0..=tp,
        0.0f64..2e6,
        0.0f64..2e6,
        0.0f64..2e6,
        0.0f64..5e5,
        0u64..500,
        0u64..500,
        1u64..2000,
        0u64..20_000,
        0u64..2000,
        0.0f64..2e6,
    )
        .prop_map(
            move |(end, spin, yld, mem, s_stall, s_miss, s_hit, s_acc, acc, misses, stall)| {
                ThreadCounters {
                    active_end_cycle: end,
                    spin_cycles: spin,
                    yield_cycles: yld,
                    mem_interference_cycles: mem,
                    sampled_interthread_miss_stall_cycles: s_stall,
                    sampled_interthread_misses: s_miss,
                    sampled_interthread_hits: s_hit,
                    sampled_llc_accesses: s_acc,
                    llc_accesses: acc.max(s_acc),
                    llc_load_misses: misses,
                    llc_load_miss_stall_cycles: stall,
                    coherency_miss_cycles: 0.0,
                    instructions: 0,
                    spin_instructions: 0,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stacks_always_sum_to_n(
        threads in prop::collection::vec(arb_counters(1_000_000), 1..17)
    ) {
        let tp = 1_000_000u64;
        let stack = SpeedupStack::from_counters(&threads, tp, &AccountingConfig::default()).unwrap();
        prop_assert!(stack.is_valid());
        let n = threads.len() as f64;
        prop_assert!((stack.base_speedup() + stack.total_overhead() - n).abs() < 1e-6);
        prop_assert!(stack.positive_interference() >= 0.0);
    }

    #[test]
    fn estimate_reverses_breakup(
        threads in prop::collection::vec(arb_counters(500_000), 1..9)
    ) {
        // Eq. 2/3 consistency: Ŝ == T̂s / Tp.
        let tp = 500_000u64;
        let stack = SpeedupStack::from_counters(&threads, tp, &AccountingConfig::default()).unwrap();
        let via_ts = stack.estimated_single_thread_cycles() / tp as f64;
        prop_assert!((via_ts - stack.estimated_speedup()).abs() < 1e-6);
    }

    #[test]
    fn clamped_accounting_never_negative(
        threads in prop::collection::vec(arb_counters(100_000), 1..9)
    ) {
        let b = accounting::account(&threads, 100_000, &AccountingConfig::default()).unwrap();
        for t in &b {
            prop_assert!(t.estimated_single_thread_cycles >= 0.0);
            prop_assert!(t.overheads.is_valid());
            prop_assert!(t.positive_cycles >= 0.0);
        }
    }

    #[test]
    fn aggregate_matches_manual_sum(
        threads in prop::collection::vec(arb_counters(200_000), 1..9)
    ) {
        let tp = 200_000u64;
        let b = accounting::account(&threads, tp, &AccountingConfig::default()).unwrap();
        let (agg, pos) = accounting::aggregate(&b, tp);
        let manual: f64 = b.iter().map(|t| t.overheads.total()).sum::<f64>() / tp as f64;
        prop_assert!((agg.total() - manual).abs() < 1e-9);
        let manual_pos: f64 = b.iter().map(|t| t.positive_cycles).sum::<f64>() / tp as f64;
        prop_assert!((pos - manual_pos).abs() < 1e-9);
    }

    #[test]
    fn breakdown_add_is_commutative_and_total_linear(
        a in prop::collection::vec(0.0f64..1e6, Component::COUNT),
        b in prop::collection::vec(0.0f64..1e6, Component::COUNT),
    ) {
        let mut ba = Breakdown::zero();
        let mut bb = Breakdown::zero();
        for (i, c) in Component::ALL.iter().enumerate() {
            ba[*c] = a[i];
            bb[*c] = b[i];
        }
        let ab = ba + bb;
        let ba2 = bb + ba;
        prop_assert_eq!(ab, ba2);
        prop_assert!((ab.total() - (ba.total() + bb.total())).abs() < 1e-6);
    }

    #[test]
    fn ranked_is_a_permutation_in_descending_order(
        vals in prop::collection::vec(0.0f64..1e6, Component::COUNT)
    ) {
        let mut b = Breakdown::zero();
        for (i, c) in Component::ALL.iter().enumerate() {
            b[*c] = vals[i];
        }
        let ranked = b.ranked();
        prop_assert_eq!(ranked.len(), Component::COUNT);
        for w in ranked.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        let sum: f64 = ranked.iter().map(|(_, v)| v).sum();
        prop_assert!((sum - b.total()).abs() < 1e-6);
    }
}
