//! Benchmark classification: build the paper's Figure 6 tree over a
//! subset of the suite (use `repro fig6` for the full 28 benchmarks).
//!
//! Run with: `cargo run --release --example classification`

use experiments::{run_profile, scaled_profile, RunOptions};
use speedup_stacks::{ClassificationConfig, ClassificationTree, ClassifiedBenchmark};
use workloads::{find, Suite};

fn main() {
    let picks = [
        ("blackscholes", Suite::ParsecMedium),
        ("radix", Suite::Splash2),
        ("cholesky", Suite::Splash2),
        ("facesim", Suite::ParsecMedium),
        ("srad", Suite::Rodinia),
        ("ferret", Suite::ParsecSmall),
        ("dedup", Suite::ParsecSmall),
        ("needle", Suite::Rodinia),
    ];
    let cfg = ClassificationConfig::default();
    let entries: Vec<ClassifiedBenchmark> = picks
        .iter()
        .map(|(name, suite)| {
            let p = find(name, *suite).expect("catalog entry");
            let p = scaled_profile(&p, 0.5);
            let out = run_profile(&p, &RunOptions::symmetric(16), None).expect("simulation");
            ClassifiedBenchmark::from_stack(out.name.clone(), out.suite.clone(), &out.stack, &cfg)
        })
        .collect();

    let tree = ClassificationTree::build(entries);
    println!("{}", tree.render());
    println!(
        "(good >= {:.0}x, poor < {:.0}x at 16 threads, per the paper)",
        cfg.good_threshold, cfg.poor_threshold
    );
}
