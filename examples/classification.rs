//! Benchmark classification through the study registry: run the paper's
//! Figure 6 study (`experiments::fig6`) at reduced scale via the uniform
//! `Study` API, then consume its structured `Report` both as text and as
//! machine-readable JSON.
//!
//! Run with: `cargo run --release --example classification`

use experiments::study::{find_study, StudyParams};
use speedup_stacks::report::json;

fn main() {
    let study = find_study("fig6").expect("fig6 is registered");
    println!("running study '{}': {}", study.name(), study.description());
    println!();

    // Reduced workload scale for a fast demo; the tree shape survives.
    let report = study
        .run(&StudyParams::with_scale(0.2))
        .expect("fig6 runs cleanly");

    // The text emitter prints the familiar figure...
    println!("{}", report.to_text());

    // ...and the same `Report` value is machine-readable: pull the
    // summary counts back out of the JSON form.
    let doc = json::parse(&report.to_json()).expect("emitter produces valid JSON");
    let scalar = |name: &str| {
        doc.get("blocks")
            .and_then(|b| b.as_array())
            .into_iter()
            .flatten()
            .find(|b| b.get("name").and_then(|n| n.as_str()) == Some(name))
            .and_then(|b| b.get("value"))
            .and_then(|v| v.as_f64())
            .unwrap_or(f64::NAN)
    };
    println!(
        "(from JSON: {} of {} benchmarks scale well; try `repro fig6 --format json`)",
        scalar("good_scalers"),
        scalar("benchmarks"),
    );
}
