//! Scaling analysis: sweep thread counts for a few benchmarks and watch
//! how each scaling delimiter grows — the paper's Figure 5 methodology,
//! packaged as a structured `Report` (a `StackTable` block renders the
//! aligned comparison table; the same value serializes to JSON/CSV).
//!
//! Run with: `cargo run --release --example scaling_analysis`

use experiments::{run_profile, scaled_profile, single_thread_reference, RunOptions};
use speedup_stacks::report::{Block, Report};
use workloads::{find, Suite};

fn main() {
    let benchmarks = [
        find("blackscholes", Suite::ParsecMedium).expect("catalog entry"),
        find("cholesky", Suite::Splash2).expect("catalog entry"),
        find("ferret", Suite::ParsecSmall).expect("catalog entry"),
    ];

    let mut rows = Vec::new();
    for p in &benchmarks {
        // Scale the work down for a fast demo; the shapes survive.
        let p = scaled_profile(p, 0.5);
        let st = single_thread_reference(&p, &RunOptions::symmetric(1)).expect("single-thread run");
        for n in [2usize, 4, 8, 16] {
            let out = run_profile(&p, &RunOptions::symmetric(n), Some(st)).expect("simulation");
            rows.push((format!("{} {}t", out.name, n), out.stack));
        }
    }

    let mut report = Report::new("scaling_analysis", "Per-component scaling analysis");
    report.push(Block::StackTable {
        name: "stacks".to_string(),
        stacks: rows,
    });
    println!("{}", report.to_text());
    println!("Reading guide: a growing 'spinning'/'yielding' column means");
    println!("synchronization limits scaling; growing 'cache'/'memory' columns");
    println!("mean shared-resource interference does.");
    println!();
    println!("(`report.to_json()` serializes every stack of this table —");
    println!(" components, estimates and actuals — for further analysis.)");
}
