//! Custom workload: build your own op streams (no catalog profile) and
//! get a speedup stack for them — the path a library user takes to
//! analyze their own parallel kernel.
//!
//! The kernel here: four threads, each processing chunks guarded by one
//! global lock, with a barrier between two phases and deliberately
//! unbalanced work.
//!
//! Run with: `cargo run --release --example custom_workload`

use cmpsim::{simulate, MachineConfig, Op, OpStream, VecStream};
use speedup_stacks::render::{render_stack, RenderOptions};
use speedup_stacks::{AccountingConfig, Component};

fn worker(thread: usize) -> Box<dyn OpStream> {
    let mut ops = Vec::new();
    // Phase 1: data-parallel over this thread's rows, with a shared
    // counter update per chunk.
    for chunk in 0..40u64 {
        ops.push(Op::Compute(2_000));
        for i in 0..8u64 {
            ops.push(Op::Load(0x1000 * thread as u64 + chunk * 8 + i));
        }
        ops.push(Op::LockAcquire(0));
        ops.push(Op::Compute(300));
        ops.push(Op::Store(0xFFFF)); // shared reduction variable
        ops.push(Op::LockRelease(0));
    }
    ops.push(Op::Barrier(0));
    // Phase 2: thread 0 has 4x the work (bad static partitioning).
    // No trailing barrier: the unbalance shows up as the imbalance
    // component (with a final barrier it would count as barrier waiting,
    // per the paper's §4.6 convention).
    let chunks = if thread == 0 { 160 } else { 40 };
    for _ in 0..chunks {
        ops.push(Op::Compute(1_000));
    }
    Box::new(VecStream::new(ops))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let result = simulate(MachineConfig::with_cores(n), (0..n).map(worker).collect())?;
    let stack = result.stack(&AccountingConfig::default())?;

    println!(
        "{}",
        render_stack(
            "custom kernel, 4 threads",
            &stack,
            &RenderOptions::default()
        )
    );

    // Actionable diagnosis, straight from the stack.
    let spin = stack.component(Component::Spinning) + stack.component(Component::Yielding);
    let imb = stack.component(Component::Imbalance);
    if spin > 0.3 {
        println!("-> the shared-counter lock serializes phase 1: consider per-thread");
        println!("   partial sums and a final reduction.");
    }
    if imb > 0.3 {
        println!("-> phase 2 is unbalanced (thread 0 does 4x the chunks): consider");
        println!("   dynamic chunk scheduling.");
    }

    // For dashboards/CI, the same stack ships as a structured report:
    // `report.to_json()` / `report.to_csv()` carry every component value.
    let mut report = speedup_stacks::Report::new("custom_workload", "custom kernel, 4 threads");
    report.push(speedup_stacks::report::Block::Stack {
        label: "custom kernel".to_string(),
        stack,
        options: RenderOptions::default(),
    });
    println!("\nCSV form of the stack:\n{}", report.to_csv());
    Ok(())
}
