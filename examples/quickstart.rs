//! Quickstart: compute a speedup stack for one workload on a simulated
//! 16-core CMP, exactly the paper's single-run recipe.
//!
//! Run with: `cargo run --release --example quickstart`

use cmpsim::{simulate, MachineConfig};
use speedup_stacks::render::{render_stack, RenderOptions};
use speedup_stacks::AccountingConfig;
use workloads::{find, streams_for, Suite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pick a benchmark model from the paper's suite.
    let profile = find("facesim", Suite::ParsecMedium).expect("catalog entry exists");

    // 1. One multi-threaded run drives the per-thread cycle accounting.
    let machine = MachineConfig::with_cores(16);
    let mt = simulate(machine, streams_for(&profile, 16))?;

    // 2. The accounting turns raw counters into a speedup stack.
    let stack = mt.stack(&AccountingConfig::default())?;

    // 3. (Validation only) a single-threaded run provides the actual
    //    speedup S = Ts / Tp; the stack's estimate needs no such run.
    let st = simulate(MachineConfig::with_cores(1), streams_for(&profile, 1))?;
    let actual = st.tp_cycles as f64 / mt.tp_cycles as f64;
    let stack = stack.with_actual_speedup(actual);

    println!(
        "{}",
        render_stack(
            "facesim_medium, 16 threads",
            &stack,
            &RenderOptions::default()
        )
    );
    println!(
        "estimated speedup {:.2} vs actual {:.2} (error {:+.1}% of N)",
        stack.estimated_speedup(),
        actual,
        stack.validation_error().unwrap_or(0.0) * 100.0
    );
    println!(
        "largest scaling bottleneck: {}",
        stack
            .overheads()
            .largest()
            .map_or("none".to_string(), |(c, v)| format!(
                "{c} ({v:.2} speedup units)"
            ))
    );

    // 4. The stack is also serializable: wrap it in a structured report
    //    and emit machine-readable JSON (same model as `repro --format
    //    json`).
    let mut report = speedup_stacks::Report::new("quickstart", "facesim on 16 cores");
    report.push(speedup_stacks::report::Block::Stack {
        label: "facesim_medium".to_string(),
        stack,
        options: RenderOptions::default(),
    });
    println!("\nthe same stack as JSON:\n{}", report.to_json());
    Ok(())
}
