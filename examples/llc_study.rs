//! LLC study: the paper's §7.3 experiment — how positive and negative
//! LLC interference trade off as the shared cache grows.
//!
//! Run with: `cargo run --release --example llc_study`

use experiments::{run_profile, scaled_profile, RunOptions};
use memsim::MemConfig;
use speedup_stacks::Component;
use workloads::{find, Suite};

fn main() {
    let p = find("cholesky", Suite::Splash2).expect("catalog entry");
    let p = scaled_profile(&p, 0.5);

    println!("cholesky on 16 cores, sweeping the shared LLC size:");
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>9}",
        "LLC", "negative", "positive", "net", "speedup"
    );
    for mib in [2usize, 4, 8, 16] {
        let opts = RunOptions {
            mem: MemConfig::default().with_llc_mib(mib),
            ..RunOptions::symmetric(16)
        };
        let out = run_profile(&p, &opts, None).expect("simulation");
        let neg = out.stack.component(Component::NegativeLlc);
        let pos = out.stack.positive_interference();
        println!(
            "{:<8} {:>9.3} {:>9.3} {:>9.3} {:>9.2}",
            format!("{mib} MB"),
            neg,
            pos,
            neg - pos,
            out.actual
        );
    }
    println!();
    println!("Expected shape (paper Figure 9): negative interference shrinks as");
    println!("capacity misses disappear, positive interference stays roughly");
    println!("constant (it is a property of the program's sharing), so the net");
    println!("effect of cache sharing eventually becomes a win.");
}
