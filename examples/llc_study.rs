//! LLC study: the paper's §7.3 experiment — how positive and negative
//! LLC interference trade off as the shared cache grows — built as a
//! *custom* structured `Report`, the same value model the registry
//! studies produce. One sweep, three renderings (text, CSV, JSON).
//!
//! Run with: `cargo run --release --example llc_study`

use experiments::{run_profile, scaled_profile, RunOptions};
use memsim::MemConfig;
use speedup_stacks::report::{Block, Column, Report, Table, Unit, Value};
use speedup_stacks::Component;
use workloads::{find, Suite};

fn main() {
    let p = find("cholesky", Suite::Splash2).expect("catalog entry");
    let p = scaled_profile(&p, 0.5);

    let numeric = |name: &str, precision: usize| {
        Column::new(name)
            .text_header(" {:>9}")
            .prefix(" ")
            .width(9)
            .precision(precision)
            .unit(Unit::Speedup)
    };
    let mut table = Table::new(
        "llc_sweep",
        vec![
            Column::new("LLC").text_header("{:<8}").left(8),
            numeric("negative", 3),
            numeric("positive", 3),
            numeric("net", 3),
            numeric("speedup", 2),
        ],
    );
    for mib in [2usize, 4, 8, 16] {
        let opts = RunOptions {
            mem: MemConfig::default().with_llc_mib(mib),
            ..RunOptions::symmetric(16)
        };
        let out = run_profile(&p, &opts, None).expect("simulation");
        let neg = out.stack.component(Component::NegativeLlc);
        let pos = out.stack.positive_interference();
        table.row(vec![
            Value::str(format!("{mib} MB")),
            neg.into(),
            pos.into(),
            (neg - pos).into(),
            out.actual.into(),
        ]);
    }

    let mut report = Report::new("llc_study", "cholesky LLC interference vs LLC size");
    report.param("benchmark", "cholesky");
    report.param("threads", 16u64);
    report.push(Block::line(
        "cholesky on 16 cores, sweeping the shared LLC size:",
    ));
    report.push(Block::Table(table));

    println!("{}", report.to_text());
    println!("Expected shape (paper Figure 9): negative interference shrinks as");
    println!("capacity misses disappear, positive interference stays roughly");
    println!("constant (it is a property of the program's sharing), so the net");
    println!("effect of cache sharing eventually becomes a win.");
    println!();
    println!("The same report as CSV:");
    println!("{}", report.to_csv());
}
